// End-to-end error-path tests for the bbng_engine CLI: each misuse must
// exit non-zero with a message that names the offence (unknown subcommand,
// missing spec file, malformed spec, schema violations, missing required
// options), and the happy informational paths must exit zero. The binary
// path is injected by CMake as BBNG_ENGINE_BINARY.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace bbng {
namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  ///< stdout + stderr, interleaved
};

/// Run the engine CLI with `args`, capturing both streams.
CliResult run_cli(const std::string& args) {
  const std::string command = std::string(BBNG_ENGINE_BINARY) + " " + args + " 2>&1";
  CliResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer{};
  std::size_t got = 0;
  while ((got = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), got);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string write_temp_spec(const std::string& name, const std::string& contents) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / ("bbng_cli_test_" + name + ".json");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  out.close();
  return path.string();
}

TEST(EngineCli, UnknownSubcommandNamesItAndFails) {
  const CliResult result = run_cli("frobnicate");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown subcommand"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("frobnicate"), std::string::npos) << result.output;
}

TEST(EngineCli, NoArgumentsPrintsUsageAndFails) {
  const CliResult result = run_cli("");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("usage:"), std::string::npos) << result.output;
}

TEST(EngineCli, MissingSpecFileNamesThePath) {
  const CliResult result = run_cli("validate --spec /nonexistent/bbng_no_such_spec.json");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("/nonexistent/bbng_no_such_spec.json"), std::string::npos)
      << result.output;
}

TEST(EngineCli, MalformedJsonReportsThePosition) {
  const std::string path = write_temp_spec("malformed", "{\"name\": \"x\", }");
  const CliResult result = run_cli("validate --spec " + path);
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("JSON parse error"), std::string::npos) << result.output;
  std::filesystem::remove(path);
}

TEST(EngineCli, SchemaViolationNamesTheOffendingKey) {
  const std::string path = write_temp_spec("unknown_key", R"({
    "name": "probe", "task": "dynamics", "version": "sum",
    "budgets": {"family": "tree"}, "grid": {"n": [6]},
    "seeds": {"begin": 0, "end": 1}, "typo_key": true})");
  const CliResult result = run_cli("validate --spec " + path);
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("typo_key"), std::string::npos) << result.output;
  std::filesystem::remove(path);
}

TEST(EngineCli, UnknownSolverNameIsRejectedAtValidateTime) {
  const std::string path = write_temp_spec("bad_solver", R"({
    "name": "probe", "task": "nash_audit", "version": "sum",
    "budgets": {"family": "tree"}, "grid": {"n": [6]},
    "seeds": {"begin": 0, "end": 1},
    "params": {"solver": "quantum_annealer"}})");
  const CliResult result = run_cli("validate --spec " + path);
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("quantum_annealer"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("exact_bb"), std::string::npos) << result.output;
  std::filesystem::remove(path);
}

TEST(EngineCli, RunWithoutRequiredOptionsFails) {
  const CliResult result = run_cli("run");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--spec and --output are required"), std::string::npos)
      << result.output;
}

TEST(EngineCli, ListTasksAndListSolversSucceed) {
  const CliResult tasks = run_cli("list-tasks");
  EXPECT_EQ(tasks.exit_code, 0);
  EXPECT_NE(tasks.output.find("nash_audit"), std::string::npos) << tasks.output;
  const CliResult solvers = run_cli("list-solvers");
  EXPECT_EQ(solvers.exit_code, 0);
  EXPECT_NE(solvers.output.find("exact_bb"), std::string::npos) << solvers.output;
  EXPECT_NE(solvers.output.find("portfolio"), std::string::npos) << solvers.output;
}

TEST(EngineCli, QuietSuppressesProgressLines) {
  const std::string path = write_temp_spec("quiet_probe", R"({
    "name": "quiet_probe", "task": "swap_equilibrium", "version": "sum",
    "generator": "star", "grid": {"n": [6]}, "seeds": {"begin": 0, "end": 2}})");
  const std::filesystem::path artifact =
      std::filesystem::temp_directory_path() / "bbng_cli_quiet_probe.jsonl";
  std::filesystem::remove(artifact);
  const CliResult result =
      run_cli("run --spec " + path + " --output " + artifact.string() + " --quiet");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_EQ(result.output.find("progress:"), std::string::npos) << result.output;
  std::filesystem::remove(path);
  std::filesystem::remove(artifact);
  std::filesystem::remove(artifact.string() + ".ckpt.json");
  std::filesystem::remove(artifact.string() + ".summary.json");
}

TEST(EngineCli, TraceReportAndNoObsWorkEndToEnd) {
  const std::string path = write_temp_spec("obs_probe", R"({
    "name": "obs_probe", "task": "nash_audit", "version": "sum",
    "budgets": {"family": "tree"}, "grid": {"n": [6]},
    "seeds": {"begin": 0, "end": 3},
    "params": {"solver": "exact_bb", "solver_budget": {"node_limit": 200000}}})");
  const std::filesystem::path dir = std::filesystem::temp_directory_path();
  const std::string artifact = (dir / "bbng_cli_obs_probe.jsonl").string();
  const std::string trace = (dir / "bbng_cli_obs_probe.trace.json").string();
  std::filesystem::remove(artifact);
  std::filesystem::remove(trace);

  const CliResult run = run_cli("run --spec " + path + " --output " + artifact +
                                " --quiet --trace " + trace);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("trace:"), std::string::npos) << run.output;
  EXPECT_TRUE(std::filesystem::exists(trace));

  // report prints a per-scenario per-counter breakdown; CSV mode carries
  // the same header for downstream tooling.
  const CliResult report = run_cli("report --artifact " + artifact);
  const CliResult report_csv = run_cli("report --artifact " + artifact + " --csv");
  const CliResult missing = run_cli("report");
  EXPECT_EQ(missing.exit_code, 2);
  EXPECT_NE(missing.output.find("--artifact is required"), std::string::npos);

  // --no-obs reproduces pre-observability records; report then refuses
  // loudly instead of printing an empty table.
  const std::string bare = (dir / "bbng_cli_obs_probe_bare.jsonl").string();
  std::filesystem::remove(bare);
  const CliResult no_obs =
      run_cli("run --spec " + path + " --output " + bare + " --quiet --no-obs");
  EXPECT_EQ(no_obs.exit_code, 0) << no_obs.output;
  const CliResult bare_report = run_cli("report --artifact " + bare);
  // With BBNG_OBS=OFF builds even the obs-on artifact has no blocks, so
  // derive the expectation from what the first report actually found.
  if (report.exit_code == 0) {
    EXPECT_NE(report.output.find("counter"), std::string::npos) << report.output;
    EXPECT_NE(report.output.find("bfs.multi.row_scans"), std::string::npos) << report.output;
    EXPECT_EQ(report_csv.exit_code, 0);
    EXPECT_NE(report_csv.output.find("scenario,task,counter"), std::string::npos)
        << report_csv.output;
    EXPECT_EQ(bare_report.exit_code, 1);
    EXPECT_NE(bare_report.output.find("no obs blocks"), std::string::npos)
        << bare_report.output;
  } else {
    EXPECT_EQ(report.exit_code, 1);
    EXPECT_NE(report.output.find("no obs blocks"), std::string::npos) << report.output;
  }

  for (const std::string& file : {artifact, bare}) {
    std::filesystem::remove(file);
    std::filesystem::remove(file + ".ckpt.json");
    std::filesystem::remove(file + ".summary.json");
  }
  std::filesystem::remove(trace);
  std::filesystem::remove(path);
}

TEST(EngineCli, MetricsOutWritesAPrometheusExpositionFile) {
  const std::string path = write_temp_spec("metrics_probe", R"({
    "name": "metrics_probe", "task": "swap_equilibrium", "version": "sum",
    "generator": "star", "grid": {"n": [6]}, "seeds": {"begin": 0, "end": 2}})");
  const std::filesystem::path dir = std::filesystem::temp_directory_path();
  const std::string artifact = (dir / "bbng_cli_metrics_probe.jsonl").string();
  const std::string metrics = (dir / "bbng_cli_metrics_probe.prom").string();
  std::filesystem::remove(artifact);
  std::filesystem::remove(metrics);

  const CliResult result = run_cli("run --spec " + path + " --output " + artifact +
                                   " --quiet --metrics-out " + metrics);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("metrics:"), std::string::npos) << result.output;
  ASSERT_TRUE(std::filesystem::exists(metrics));
  EXPECT_FALSE(std::filesystem::exists(metrics + ".tmp")) << "rewrites must be atomic";
  std::ifstream in(metrics, std::ios::binary);
  std::string first_line;
  ASSERT_TRUE(std::getline(in, first_line));
  EXPECT_EQ(first_line, "# bbng metrics exposition (Prometheus text format)");

  // The run also leaves the host-telemetry sidecar next to the artifact.
  EXPECT_TRUE(std::filesystem::exists(artifact + ".obs_host.json"));

  std::filesystem::remove(path);
  std::filesystem::remove(metrics);
  for (const char* suffix : {"", ".ckpt.json", ".summary.json", ".obs_host.json"}) {
    std::filesystem::remove(artifact + suffix);
  }
}

TEST(EngineCli, ReportMergesAHandcraftedHostSidecarVerbatim) {
  // A handcrafted artifact + sidecar make the merged report fully
  // deterministic, so the CSV output can be compared as a golden string.
  const std::filesystem::path dir = std::filesystem::temp_directory_path();
  const std::string artifact = (dir / "bbng_cli_golden.jsonl").string();
  {
    std::ofstream out(artifact, std::ios::binary | std::ios::trunc);
    out << R"({"format": "bbng-jsonl", "campaign": "golden"})" << "\n"
        << R"({"job": 0, "scenario": "s1", "task": "dynamics", "obs": {"a.b": 10}})" << "\n"
        << R"({"job": 1, "scenario": "s1", "task": "dynamics", "obs": {"a.b": 32}})" << "\n";
  }
  {
    std::ofstream out(artifact + ".obs_host.json", std::ios::binary | std::ios::trunc);
    out << R"({
      "format": "bbng-obs-host", "format_version": 1, "campaign": "golden",
      "elapsed_seconds": 1.5, "obs_compiled": true,
      "host": {"host_threads": 1, "compiler": "x", "build_type": "Release",
               "git_sha": "abc", "peak_rss_kb": 12345},
      "gauges": {"mem.vm_rss_kb": {"last": 100.0, "min": 50.0, "max": 120.0, "samples": 4}},
      "histograms": {"engine.job": {"count": 2, "sum_us": 300, "max_us": 200,
                                    "p50_us": 100.0, "p90_us": 180.0, "p99_us": 198.0}}
    })" << "\n";
  }

  const CliResult csv = run_cli("report --artifact " + artifact + " --csv");
  EXPECT_EQ(csv.exit_code, 0) << csv.output;
  EXPECT_EQ(csv.output,
            "scenario,task,counter,jobs,total,mean_per_job\n"
            "s1,dynamics,a.b,2,42,21.000\n"
            "\n"
            "phase,count,sum_us,max_us,p50_us,p90_us,p99_us\n"
            "engine.job,2,300,200,100.0,180.0,198.0\n"
            "\n"
            "gauge,last,min,max,samples\n"
            "mem.vm_rss_kb,100.000,50.000,120.000,4\n");

  // Grid mode shows the same merge with the sidecar named in the titles,
  // and peak_rss_kb surfaced on the gauge table.
  const CliResult grid = run_cli("report --artifact " + artifact);
  EXPECT_EQ(grid.exit_code, 0) << grid.output;
  EXPECT_NE(grid.output.find("latency histograms: " + artifact + ".obs_host.json"),
            std::string::npos)
      << grid.output;
  EXPECT_NE(grid.output.find("peak_rss_kb 12345"), std::string::npos) << grid.output;

  // Without the sidecar the report is just the counter table — reports on
  // pre-telemetry artifacts keep working unchanged.
  std::filesystem::remove(artifact + ".obs_host.json");
  const CliResult bare = run_cli("report --artifact " + artifact + " --csv");
  EXPECT_EQ(bare.exit_code, 0) << bare.output;
  EXPECT_EQ(bare.output,
            "scenario,task,counter,jobs,total,mean_per_job\n"
            "s1,dynamics,a.b,2,42,21.000\n");

  std::filesystem::remove(artifact);
}

}  // namespace
}  // namespace bbng
