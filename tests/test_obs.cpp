// Observability layer tests — the registry/trace contracts the engine
// leans on: thread-local shards merge into stable totals (surviving thread
// exit), the runtime kill switch stops counting, CounterFrame captures only
// the calling thread's kJob deltas (the per-job determinism the artifact
// `obs` blocks depend on), emitted traces round-trip through the structural
// Chrome-trace validator, campaign artifacts with obs blocks stay
// byte-identical across 1/4/16 runner threads and kill+resume, --no-obs
// reproduces pre-observability record bytes exactly, and the legacy counter
// structs (MultiBfsStats) agree bit-for-bit with the registry.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/runner.hpp"
#include "engine/sinks.hpp"
#include "engine/spec.hpp"
#include "engine/tasks.hpp"
#include "graph/generators.hpp"
#include "graph/multi_bfs.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace bbng {
namespace {

TEST(MetricRegistry, ShardsMergeAcrossThreadsAndSurviveExit) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with BBNG_OBS=OFF";
  const obs::CounterId id = obs::register_counter("test.registry.merge");
  const std::uint64_t before = obs::total(id);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([id] {
      for (int i = 0; i < 1000; ++i) obs::add(id, 1);
    });
  }
  for (auto& thread : threads) thread.join();
  // The worker threads have exited; their shards must have folded into the
  // retained totals rather than vanishing with the threads.
  EXPECT_EQ(obs::total(id), before + 4000);

  bool found = false;
  std::string previous;
  for (const obs::CounterValue& counter : obs::snapshot()) {
    EXPECT_LT(previous, counter.name) << "snapshot must be name-sorted";
    previous = counter.name;
    if (counter.name == "test.registry.merge") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(MetricRegistry, ReRegisteringReturnsTheSameId) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with BBNG_OBS=OFF";
  const obs::CounterId a = obs::register_counter("test.registry.intern");
  const obs::CounterId b = obs::register_counter("test.registry.intern");
  EXPECT_EQ(a, b);
}

TEST(MetricRegistry, KillSwitchStopsCounting) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with BBNG_OBS=OFF";
  const obs::CounterId id = obs::register_counter("test.registry.kill_switch");
  const std::uint64_t before = obs::total(id);
  obs::set_enabled(false);
  obs::add(id, 100);
  obs::set_enabled(true);
  EXPECT_EQ(obs::total(id), before);
  obs::add(id, 1);
  EXPECT_EQ(obs::total(id), before + 1);
}

TEST(MetricRegistry, CounterFrameIsThreadLocalAndJobScoped) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with BBNG_OBS=OFF";
  const obs::CounterId job_id = obs::register_counter("test.frame.job");
  const obs::CounterId host_id =
      obs::register_counter("test.frame.host", obs::CounterScope::kHost);
  const obs::CounterFrame frame;
  obs::add(job_id, 3);
  obs::add(host_id, 2);
  // Increments on another thread must not leak into this thread's frame —
  // that isolation is what makes per-job obs blocks deterministic.
  std::thread([job_id] { obs::add(job_id, 100); }).join();

  bool saw_job = false;
  for (const obs::CounterValue& delta : frame.deltas()) {
    EXPECT_NE(delta.name, "test.frame.host") << "kHost counters are excluded from frames";
    if (delta.name == "test.frame.job") {
      saw_job = true;
      EXPECT_EQ(delta.value, 3u);
    }
  }
  EXPECT_TRUE(saw_job);
  EXPECT_EQ(frame.value("test.frame.job"), 3u);
  EXPECT_EQ(frame.value("test.frame.host"), 2u);  // value() reads any scope
  EXPECT_EQ(frame.value("test.frame.unregistered"), 0u);
}

TEST(TraceSession, EmittedTraceRoundTripsThroughTheValidator) {
  obs::trace::begin();
  {
    obs::TraceSpan outer("test.outer");
    outer.arg("label", std::string_view{"value"});
    outer.arg("number", std::uint64_t{7});
    obs::TraceSpan inner("test.inner");
  }
  std::thread([] { obs::TraceSpan span("test.worker"); }).join();
  const std::string json = obs::trace::end_json();
  const std::size_t events = obs::validate_trace_json(parse_json(json));
  if (obs::kCompiledIn) {
    EXPECT_GE(events, 3u) << json;
    EXPECT_NE(json.find("test.outer"), std::string::npos);
    EXPECT_NE(json.find("displayTimeUnit"), std::string::npos);
  } else {
    EXPECT_EQ(events, 0u) << "OFF build still renders an empty, valid trace";
  }
}

TEST(TraceSession, SpansOutsideASessionAreDropped) {
  {
    obs::TraceSpan span("test.orphan");
    EXPECT_FALSE(span.active());
  }
  obs::trace::begin();
  const std::string json = obs::trace::end_json();
  EXPECT_EQ(json.find("test.orphan"), std::string::npos);
  EXPECT_EQ(obs::validate_trace_json(parse_json(json)), 0u);
}

TEST(TraceSession, ValidatorRejectsStructurallyInvalidDocuments) {
  EXPECT_THROW(static_cast<void>(obs::validate_trace_json(parse_json("[]"))),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(obs::validate_trace_json(parse_json(R"({"other": []})"))),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(obs::validate_trace_json(
                   parse_json(R"({"traceEvents": [{"name": "x"}]})"))),
               std::invalid_argument);
}

TEST(MetricRegistry, LegacyStructsAgreeBitForBitWithTheRegistry) {
  if (!obs::kCompiledIn || !obs::enabled()) GTEST_SKIP() << "registry inactive";
  Rng rng(11);
  const UGraph g = erdos_renyi(80, 0.06, rng);
  const obs::CounterFrame frame;
  MultiBfs engine(g);
  std::vector<Vertex> sources;
  for (Vertex v = 0; v < 70; ++v) sources.push_back(v);
  static_cast<void>(engine.run(sources));
  const MultiBfsStats& stats = engine.stats();
  EXPECT_EQ(frame.value("bfs.multi.sweeps"), stats.sweeps);
  EXPECT_EQ(frame.value("bfs.multi.levels"), stats.levels);
  EXPECT_EQ(frame.value("bfs.multi.row_scans"), stats.row_scans);
  EXPECT_EQ(frame.value("bfs.multi.settled"), stats.settled);
}

// ---------------------------------------------------------------------------
// Campaign-level determinism of the embedded obs blocks.

// Mixes the three most heavily instrumented task kinds: the nash audit
// (multi-BFS prepass + solver backends), churn (flush-point deltas), and
// dynamics (delta evaluator + social cost).
const char* kObsCampaignText = R"({
  "name": "obs_probe",
  "base_seed": 5,
  "scenarios": [
    {"name": "nash", "task": "nash_audit", "version": "sum",
     "budgets": {"family": "tree"}, "grid": {"n": [6, 7]},
     "seeds": {"begin": 0, "end": 4},
     "params": {"solver": "exact_bb", "solver_budget": {"node_limit": 200000}}},
    {"name": "churny", "task": "churn", "version": "sum",
     "budgets": {"family": "tree"}, "grid": {"n": [8]},
     "seeds": {"begin": 0, "end": 4},
     "params": {"churn": {"events": 12, "checkpoint_every": 6, "mode": "track",
                          "max_budget": 3,
                          "weights": {"join": 4, "leave": 1, "grow": 4,
                                      "shrink": 1, "perturb": 1}}}},
    {"name": "dyn", "task": "dynamics", "version": "sum",
     "budgets": {"family": "tree"}, "grid": {"n": [6]},
     "seeds": {"begin": 0, "end": 4},
     "params": {"max_rounds": 100, "exact_limit": 5000}}
  ]
})";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class ObsCampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    campaign_ = parse_campaign_spec(kObsCampaignText);
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("bbng_obs_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& leaf) const { return (dir_ / leaf).string(); }

  [[nodiscard]] RunnerConfig config(const std::string& leaf, unsigned threads) const {
    RunnerConfig cfg;
    cfg.output_path = path(leaf);
    cfg.threads = threads;
    cfg.checkpoint_every = 5;
    return cfg;
  }

  CampaignSpec campaign_;
  std::filesystem::path dir_;
};

TEST_F(ObsCampaignTest, ObsBlocksAreByteIdenticalAcrossThreadCountsAndResume) {
  const RunnerConfig reference_cfg = config("reference.jsonl", 1);
  ASSERT_TRUE(run_campaign(campaign_, kObsCampaignText, reference_cfg).completed);
  const std::string reference = read_file(reference_cfg.output_path);

  for (const unsigned threads : {4u, 16u}) {
    // Built by append: `"t" + std::to_string(...)` trips a GCC 12
    // -Wrestrict false positive inside basic_string::insert.
    std::string artifact = "t";
    artifact += std::to_string(threads);
    artifact += ".jsonl";
    const RunnerConfig cfg = config(artifact, threads);
    ASSERT_TRUE(run_campaign(campaign_, kObsCampaignText, cfg).completed);
    EXPECT_EQ(read_file(cfg.output_path), reference) << "threads=" << threads;
  }

  RunnerConfig kill_cfg = config("kill.jsonl", 3);
  kill_cfg.halt_after = 7;
  ASSERT_FALSE(run_campaign(campaign_, kObsCampaignText, kill_cfg).completed);
  const RunnerConfig resume_cfg = config("kill.jsonl", 16);
  ASSERT_TRUE(resume_campaign(campaign_, kObsCampaignText, resume_cfg).completed);
  EXPECT_EQ(read_file(resume_cfg.output_path), reference);
}

TEST_F(ObsCampaignTest, RecordsCarryObsAsLastMemberAndSummaryAggregatesIt) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with BBNG_OBS=OFF";
  const RunnerConfig cfg = config("artifact.jsonl", 2);
  ASSERT_TRUE(run_campaign(campaign_, kObsCampaignText, cfg).completed);
  const JsonlFile file = read_jsonl(cfg.output_path);
  ASSERT_EQ(file.records.size(), campaign_.num_jobs());
  bool saw_solver_counter = false;
  for (const JsonValue& record : file.records) {
    const auto& members = record.members();
    ASSERT_FALSE(members.empty());
    EXPECT_EQ(members.back().first, "obs");
    const JsonValue& obs_block = members.back().second;
    ASSERT_TRUE(obs_block.is_object());
    for (const auto& [name, value] : obs_block.members()) {
      EXPECT_TRUE(value.is_int()) << name;
      EXPECT_GT(value.as_uint(), 0u) << name << " (deltas() emits nonzero counters only)";
      if (name.rfind("solver.", 0) == 0) saw_solver_counter = true;
    }
  }
  EXPECT_TRUE(saw_solver_counter);

  const JsonValue summary = parse_json(read_file(summary_path_for(cfg.output_path)));
  const JsonValue& nash = summary.at("scenarios").items()[0];
  EXPECT_EQ(nash.at("name").as_string(), "nash");
  // The prepass row scans must have been flattened into an aggregated
  // "obs."-prefixed numeric field covering every job of the scenario.
  const JsonValue& row_scans = nash.at("numbers").at("obs.bfs.multi.row_scans");
  EXPECT_EQ(row_scans.at("count").as_uint(), nash.at("jobs").as_uint());
  EXPECT_GT(row_scans.at("mean").as_double(), 0.0);
}

TEST_F(ObsCampaignTest, NoObsReproducesPreObservabilityBytes) {
  const RunnerConfig on_cfg = config("on.jsonl", 2);
  ASSERT_TRUE(run_campaign(campaign_, kObsCampaignText, on_cfg).completed);
  RunnerConfig off_cfg = config("off.jsonl", 2);
  off_cfg.obs = false;
  ASSERT_TRUE(run_campaign(campaign_, kObsCampaignText, off_cfg).completed);

  std::istringstream on_stream(read_file(on_cfg.output_path));
  std::istringstream off_stream(read_file(off_cfg.output_path));
  std::string on_line;
  std::string off_line;
  ASSERT_TRUE(std::getline(on_stream, on_line) && std::getline(off_stream, off_line));
  EXPECT_EQ(on_line, off_line);  // headers agree
  std::uint64_t records = 0;
  while (std::getline(on_stream, on_line)) {
    ASSERT_TRUE(std::getline(off_stream, off_line));
    ++records;
    if (!obs::kCompiledIn) {
      EXPECT_EQ(on_line, off_line);
      continue;
    }
    // The obs block is the record's LAST member, so dropping it is exactly
    // a suffix strip: everything before `,"obs":` plus the closing brace.
    const std::size_t at = on_line.find(R"(,"obs":)");
    ASSERT_NE(at, std::string::npos) << on_line;
    EXPECT_EQ(on_line.substr(0, at) + "}", off_line);
  }
  EXPECT_FALSE(std::getline(off_stream, off_line));
  EXPECT_EQ(records, campaign_.num_jobs());
}

TEST_F(ObsCampaignTest, ProgressLineCarriesCumulativeWorkCounters) {
  RunnerConfig cfg = config("progress.jsonl", 2);
  cfg.progress = true;
  cfg.progress_interval_seconds = 0;
  ::testing::internal::CaptureStderr();
  ASSERT_TRUE(run_campaign(campaign_, kObsCampaignText, cfg).completed);
  const std::string stderr_text = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(stderr_text.find("searches "), std::string::npos) << stderr_text;
  EXPECT_NE(stderr_text.find("row_scans "), std::string::npos) << stderr_text;
  // The counters ride before the eta: numeric-eta lines still end in 's'.
  std::istringstream stream(stderr_text);
  for (std::string line; std::getline(stream, line);) {
    if (line.rfind("progress:", 0) == 0 && line.find("eta ?") == std::string::npos) {
      EXPECT_EQ(line.back(), 's') << line;
    }
  }
}

}  // namespace
}  // namespace bbng
