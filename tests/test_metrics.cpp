// Unit tests for auxiliary graph metrics: girth, center, periphery.
#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/tree.hpp"

namespace bbng {
namespace {

TEST(Girth, TreesHaveNone) {
  EXPECT_FALSE(girth(path_ugraph(6)).has_value());
  Rng rng(1);
  EXPECT_FALSE(girth(random_tree_digraph(20, rng).underlying()).has_value());
  EXPECT_FALSE(girth(UGraph(3)).has_value());
}

TEST(Girth, CyclesAndCliques) {
  EXPECT_EQ(girth(cycle_ugraph(3)), 3U);
  EXPECT_EQ(girth(cycle_ugraph(8)), 8U);
  EXPECT_EQ(girth(complete_ugraph(5)), 3U);
  EXPECT_EQ(girth(grid_graph(3, 3)), 4U);
}

TEST(Girth, CycleWithChordFindsShortest) {
  UGraph g = cycle_ugraph(8);
  g.add_edge(0, 3);  // chord creates a 4-cycle 0-1-2-3
  EXPECT_EQ(girth(g), 4U);
}

TEST(Girth, DisjointCyclesTakesMinimum) {
  UGraph g(9);
  for (Vertex v = 0; v < 5; ++v) g.add_edge(v, (v + 1) % 5);       // C5
  for (Vertex v = 0; v < 4; ++v) g.add_edge(5 + v, 5 + (v + 1) % 4);  // C4
  EXPECT_EQ(girth(g), 4U);
}

TEST(Girth, MatchesBruteForceOnRandomGraphs) {
  Rng rng(2);
  for (int round = 0; round < 8; ++round) {
    const UGraph g = erdos_renyi(10, 0.25, rng);
    // Brute force: shortest cycle through each edge = remove edge, distance
    // between endpoints + 1.
    std::uint32_t brute = kUnreachable;
    for (Vertex u = 0; u < 10; ++u) {
      for (const Vertex v : g.neighbors(u)) {
        if (v < u) continue;
        UGraph cut = g;
        cut.remove_edge(u, v);
        const auto d = bfs_distances(cut, u);
        if (d[v] != kUnreachable) brute = std::min(brute, d[v] + 1);
      }
    }
    const auto result = girth(g);
    if (brute == kUnreachable) {
      EXPECT_FALSE(result.has_value()) << "round " << round;
    } else {
      ASSERT_TRUE(result.has_value()) << "round " << round;
      EXPECT_EQ(*result, brute) << "round " << round;
    }
  }
}

TEST(Center, PathCenterIsMiddle) {
  EXPECT_EQ(center(path_ugraph(5)), (std::vector<Vertex>{2}));
  EXPECT_EQ(center(path_ugraph(6)), (std::vector<Vertex>{2, 3}));
}

TEST(Periphery, PathPeripheryIsEnds) {
  EXPECT_EQ(periphery(path_ugraph(5)), (std::vector<Vertex>{0, 4}));
}

TEST(CenterPeriphery, RegularGraphsAreAllBoth) {
  const UGraph g = cycle_ugraph(6);
  EXPECT_EQ(center(g).size(), 6U);
  EXPECT_EQ(periphery(g).size(), 6U);
}

TEST(CenterPeriphery, DisconnectedIsEmpty) {
  UGraph g(4);
  g.add_edge(0, 1);
  EXPECT_TRUE(center(g).empty());
  EXPECT_TRUE(periphery(g).empty());
}

TEST(WienerIndex, SmallClosedForms) {
  // Path P4: pairs (0,1),(0,2),(0,3),(1,2),(1,3),(2,3) = 1+2+3+1+2+1 = 10.
  EXPECT_EQ(wiener_index(path_ugraph(4)), 10U);
  // K4: 6 pairs at distance 1.
  EXPECT_EQ(wiener_index(complete_ugraph(4)), 6U);
  // Star on 5: 4 pairs at 1 + 6 pairs at 2 = 16.
  UGraph star(5);
  for (Vertex v = 1; v < 5; ++v) star.add_edge(0, v);
  EXPECT_EQ(wiener_index(star), 16U);
}

TEST(WienerIndex, DisconnectedIsNull) {
  UGraph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(wiener_index(g).has_value());
}

TEST(WienerIndex, TrivialGraphs) {
  EXPECT_EQ(wiener_index(UGraph(0)), 0U);
  EXPECT_EQ(wiener_index(UGraph(1)), 0U);
}

}  // namespace
}  // namespace bbng
