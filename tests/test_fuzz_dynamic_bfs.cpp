// Randomised operation-sequence stress tests for the dynamic BFS oracle
// (graph/dynamic_bfs.hpp), in the style of test_fuzz_graphs.cpp: drive
// DynamicBfs with long random insert/delete sequences — including
// disconnecting deletes and reconnecting inserts — and check distances,
// aggregates, and the shortest-path tree against a from-scratch BfsRunner
// recompute after every step, for repair-only, fallback-only, and default
// threshold configurations. A second family runs the vector-core and
// CSR-core instantiations of the oracle side by side on identical op
// sequences (inserts, deletes, trial probes, fallback-threshold crossings)
// and demands bit-for-bit agreement on every observable, including the
// instrumentation counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>

#include "graph/bfs.hpp"
#include "graph/csr_graph.hpp"
#include "graph/dynamic_bfs.hpp"
#include "graph/generators.hpp"
#include "graph/ugraph.hpp"
#include "util/rng.hpp"

namespace bbng {
namespace {

using Edge = std::pair<Vertex, Vertex>;

Edge key(Vertex a, Vertex b) { return {std::min(a, b), std::max(a, b)}; }

/// Full oracle-vs-recompute audit: distances, aggregates, tree invariants.
void expect_matches_recompute(const DynamicBfs& oracle, BfsRunner& reference, int step) {
  reference.run(oracle.graph(), oracle.source());
  const std::uint32_t n = oracle.num_vertices();
  for (Vertex v = 0; v < n; ++v) {
    ASSERT_EQ(oracle.dist(v), reference.dist(v)) << "step " << step << " vertex " << v;
  }
  ASSERT_EQ(oracle.reached(), reference.reached()) << "step " << step;
  ASSERT_EQ(oracle.sum_dist(), reference.sum_dist()) << "step " << step;
  ASSERT_EQ(oracle.max_dist(), reference.max_dist()) << "step " << step;
  // The parent array stays a valid shortest-path tree.
  for (Vertex v = 0; v < n; ++v) {
    if (v == oracle.source() || oracle.dist(v) == kUnreachable) {
      ASSERT_EQ(oracle.parent(v), kUnreachable) << "step " << step << " vertex " << v;
    } else {
      const Vertex p = oracle.parent(v);
      ASSERT_LT(p, n) << "step " << step << " vertex " << v;
      ASSERT_TRUE(oracle.graph().has_edge(p, v)) << "step " << step << " vertex " << v;
      ASSERT_EQ(oracle.dist(p) + 1, oracle.dist(v)) << "step " << step << " vertex " << v;
    }
  }
}

/// Random insert/delete walk. `insert_bias` > 0.5 grows the graph (dense,
/// mostly-connected); < 0.5 shreds it (frequent disconnecting deletes).
void fuzz_walk(std::uint64_t seed, std::uint32_t n, std::uint32_t rebuild_threshold, int steps,
               double insert_bias) {
  Rng rng(seed);
  DynamicBfs oracle(UGraph(n), /*source=*/0, rebuild_threshold);
  BfsRunner reference(n);
  std::set<Edge> shadow;

  for (int step = 0; step < steps; ++step) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const auto v = static_cast<Vertex>(rng.next_below(n));
    if (u == v) continue;
    if (rng.next_bool(insert_bias) && !shadow.count(key(u, v))) {
      oracle.insert_edge(u, v);
      shadow.insert(key(u, v));
    } else if (shadow.count(key(u, v))) {
      oracle.delete_edge(u, v);
      shadow.erase(key(u, v));
    } else {
      continue;
    }
    ASSERT_EQ(oracle.graph().num_edges(), shadow.size());
    expect_matches_recompute(oracle, reference, step);

    // Periodically probe an absent edge through the trial journal: inside
    // the trial, distances and aggregates must equal a recompute on the
    // probe graph (parents are documented as unspecified there); after
    // rollback the full state — including the tree — must be restored, and
    // the very next loop iteration may delete a tree edge on top of it.
    if (step % 5 == 0) {
      const auto a = static_cast<Vertex>(rng.next_below(n));
      const auto b = static_cast<Vertex>(rng.next_below(n));
      if (a != b && !shadow.count(key(a, b))) {
        oracle.begin_trial();
        oracle.insert_edge(a, b);
        reference.run(oracle.graph(), oracle.source());
        for (Vertex v = 0; v < n; ++v) {
          ASSERT_EQ(oracle.dist(v), reference.dist(v)) << "trial step " << step;
        }
        ASSERT_EQ(oracle.reached(), reference.reached()) << "trial step " << step;
        ASSERT_EQ(oracle.sum_dist(), reference.sum_dist()) << "trial step " << step;
        ASSERT_EQ(oracle.max_dist(), reference.max_dist()) << "trial step " << step;
        oracle.rollback_trial();
        expect_matches_recompute(oracle, reference, step);
      }
    }
  }
}

TEST(FuzzDynamicBfs, RepairPathAgreesWithRecompute) {
  // Threshold n disables the fallback: every delete exercises the
  // subtree-invalidate + bucket-repair path.
  fuzz_walk(/*seed=*/31337, /*n=*/24, /*rebuild_threshold=*/24, /*steps=*/3000, 0.55);
}

TEST(FuzzDynamicBfs, FallbackPathAgreesWithRecompute) {
  // Threshold 1 rebuilds on essentially every tree-edge delete.
  fuzz_walk(/*seed=*/31338, /*n=*/20, /*rebuild_threshold=*/1, /*steps=*/2000, 0.55);
}

TEST(FuzzDynamicBfs, DefaultThresholdAgreesWithRecompute) {
  fuzz_walk(/*seed=*/31339, /*n=*/48, /*rebuild_threshold=*/0, /*steps=*/2500, 0.55);
}

TEST(FuzzDynamicBfs, ShreddingWalkCoversDisconnectionAndReconnection) {
  // Deletion-heavy walk on a sparse graph: components split and re-merge
  // constantly, covering unreachable labels and reconnecting inserts.
  fuzz_walk(/*seed=*/31340, /*n=*/18, /*rebuild_threshold=*/18, /*steps=*/2500, 0.45);
}

TEST(FuzzDynamicBfs, SmallThresholdMixesRepairAndFallback) {
  // Threshold 3: small subtrees repair incrementally, larger ones fall back
  // — the boundary between the two paths is crossed constantly.
  fuzz_walk(/*seed=*/31341, /*n=*/22, /*rebuild_threshold=*/3, /*steps=*/2500, 0.5);
}

TEST(FuzzDynamicBfs, SeededFromRandomGraphThenPerturbed) {
  // Start from a connected Erdős–Rényi graph instead of the empty graph, so
  // early deletes hit deep, bushy BFS trees.
  Rng rng(31342);
  for (int round = 0; round < 6; ++round) {
    const std::uint32_t n = 16 + 8 * static_cast<std::uint32_t>(round % 3);
    const UGraph g = connected_erdos_renyi(n, 0.12, rng);
    std::set<Edge> shadow;
    for (Vertex a = 0; a < n; ++a) {
      for (const Vertex b : g.neighbors(a)) {
        if (a < b) shadow.insert(key(a, b));
      }
    }
    DynamicBfs oracle(g, /*source=*/static_cast<Vertex>(rng.next_below(n)),
                      /*rebuild_threshold=*/n);
    BfsRunner reference(n);
    for (int step = 0; step < 400; ++step) {
      const auto u = static_cast<Vertex>(rng.next_below(n));
      const auto v = static_cast<Vertex>(rng.next_below(n));
      if (u == v) continue;
      if (shadow.count(key(u, v))) {
        oracle.delete_edge(u, v);
        shadow.erase(key(u, v));
      } else if (rng.next_bool(0.4)) {
        oracle.insert_edge(u, v);
        shadow.insert(key(u, v));
      } else {
        continue;
      }
      expect_matches_recompute(oracle, reference, step);
    }
  }
}

/// Bit-for-bit comparison of every observable of the two core
/// instantiations, including the shortest-path tree and the counters.
void expect_cores_identical(const DynamicBfs& vec, const CsrDynamicBfs& csr, int step) {
  const std::uint32_t n = vec.num_vertices();
  for (Vertex v = 0; v < n; ++v) {
    ASSERT_EQ(vec.dist(v), csr.dist(v)) << "step " << step << " vertex " << v;
    ASSERT_EQ(vec.parent(v), csr.parent(v)) << "step " << step << " vertex " << v;
  }
  ASSERT_EQ(vec.reached(), csr.reached()) << "step " << step;
  ASSERT_EQ(vec.sum_dist(), csr.sum_dist()) << "step " << step;
  ASSERT_EQ(vec.max_dist(), csr.max_dist()) << "step " << step;
  ASSERT_EQ(vec.ops(), csr.ops()) << "step " << step;
  ASSERT_EQ(vec.full_rebuilds(), csr.full_rebuilds()) << "step " << step;
  ASSERT_EQ(vec.touched(), csr.touched()) << "step " << step;
}

/// Drive a DynamicBfs and a CsrDynamicBfs through the same random op
/// sequence — inserts, disconnecting deletes, and trial probes — and demand
/// bit-for-bit agreement after every operation. Because both cores keep
/// sorted adjacency, the BFS visit order, repair order, fallback decisions,
/// and the touched() work counter must all coincide exactly.
void csr_differential_walk(std::uint64_t seed, std::uint32_t n, std::uint32_t rebuild_threshold,
                           int steps, double insert_bias) {
  Rng rng(seed);
  DynamicBfs vec(UGraph(n), /*source=*/0, rebuild_threshold);
  CsrDynamicBfs csr(CsrUGraph(n), /*source=*/0, rebuild_threshold);
  BfsRunner reference(n);
  std::set<Edge> shadow;

  for (int step = 0; step < steps; ++step) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const auto v = static_cast<Vertex>(rng.next_below(n));
    if (u == v) continue;
    if (rng.next_bool(insert_bias) && !shadow.count(key(u, v))) {
      vec.insert_edge(u, v);
      csr.insert_edge(u, v);
      shadow.insert(key(u, v));
    } else if (shadow.count(key(u, v))) {
      vec.delete_edge(u, v);
      csr.delete_edge(u, v);
      shadow.erase(key(u, v));
    } else {
      continue;
    }
    ASSERT_EQ(csr.graph().num_edges(), shadow.size());
    expect_cores_identical(vec, csr, step);
    // Anchor both cores to ground truth as well, so a shared bug in the
    // templated oracle cannot hide behind the differential agreement.
    if (step % 25 == 0) expect_matches_recompute(vec, reference, step);

    // Trial probes through both journals: agreement must hold inside the
    // trial and after rollback.
    if (step % 7 == 0) {
      const auto a = static_cast<Vertex>(rng.next_below(n));
      const auto b = static_cast<Vertex>(rng.next_below(n));
      if (a != b && !shadow.count(key(a, b))) {
        vec.begin_trial();
        csr.begin_trial();
        vec.insert_edge(a, b);
        csr.insert_edge(a, b);
        expect_cores_identical(vec, csr, step);
        vec.rollback_trial();
        csr.rollback_trial();
        expect_cores_identical(vec, csr, step);
      }
    }
  }
}

TEST(FuzzCsrDynamicBfs, RepairPathCoresAgreeBitForBit) {
  csr_differential_walk(/*seed=*/7201, /*n=*/26, /*rebuild_threshold=*/26, /*steps=*/3000, 0.55);
}

TEST(FuzzCsrDynamicBfs, FallbackPathCoresAgreeBitForBit) {
  csr_differential_walk(/*seed=*/7202, /*n=*/20, /*rebuild_threshold=*/1, /*steps=*/2000, 0.55);
}

TEST(FuzzCsrDynamicBfs, ThresholdBoundaryCoresAgreeBitForBit) {
  // Threshold 3 keeps both oracles crossing the repair/fallback boundary;
  // the fallback decision depends on the subtree size, so agreement here
  // proves the cores collect identical subtrees.
  csr_differential_walk(/*seed=*/7203, /*n=*/24, /*rebuild_threshold=*/3, /*steps=*/2500, 0.5);
}

TEST(FuzzCsrDynamicBfs, ShreddingWalkCoresAgreeBitForBit) {
  csr_differential_walk(/*seed=*/7204, /*n=*/18, /*rebuild_threshold=*/18, /*steps=*/2500, 0.45);
}

TEST(FuzzCsrDynamicBfs, SeededFromRandomGraphCoresAgreeBitForBit) {
  // Start both cores from the same dense seeded graph so early deletes hit
  // deep trees; also exercises the CsrUGraph(const UGraph&) rebuild path as
  // an oracle substrate rather than the empty-graph patch path.
  Rng rng(7205);
  for (int round = 0; round < 5; ++round) {
    const std::uint32_t n = 16 + 8 * static_cast<std::uint32_t>(round % 3);
    const UGraph g = connected_erdos_renyi(n, 0.12, rng);
    std::set<Edge> shadow;
    for (Vertex a = 0; a < n; ++a) {
      for (const Vertex b : g.neighbors(a)) {
        if (a < b) shadow.insert(key(a, b));
      }
    }
    const auto source = static_cast<Vertex>(rng.next_below(n));
    DynamicBfs vec(g, source, /*rebuild_threshold=*/n);
    CsrDynamicBfs csr(CsrUGraph(g), source, /*rebuild_threshold=*/n);
    for (int step = 0; step < 400; ++step) {
      const auto u = static_cast<Vertex>(rng.next_below(n));
      const auto v = static_cast<Vertex>(rng.next_below(n));
      if (u == v) continue;
      if (shadow.count(key(u, v))) {
        vec.delete_edge(u, v);
        csr.delete_edge(u, v);
        shadow.erase(key(u, v));
      } else if (rng.next_bool(0.4)) {
        vec.insert_edge(u, v);
        csr.insert_edge(u, v);
        shadow.insert(key(u, v));
      } else {
        continue;
      }
      expect_cores_identical(vec, csr, step);
    }
  }
}

TEST(FuzzDynamicBfs, InstrumentationCountsAreCoherent) {
  Rng rng(31343);
  const std::uint32_t n = 20;
  DynamicBfs always_fallback(UGraph(n), 0, /*rebuild_threshold=*/1);
  DynamicBfs never_fallback(UGraph(n), 0, /*rebuild_threshold=*/n);
  std::set<Edge> shadow;
  for (int step = 0; step < 1500; ++step) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const auto v = static_cast<Vertex>(rng.next_below(n));
    if (u == v) continue;
    if (rng.next_bool(0.55) && !shadow.count(key(u, v))) {
      always_fallback.insert_edge(u, v);
      never_fallback.insert_edge(u, v);
      shadow.insert(key(u, v));
    } else if (shadow.count(key(u, v))) {
      always_fallback.delete_edge(u, v);
      never_fallback.delete_edge(u, v);
      shadow.erase(key(u, v));
    }
  }
  EXPECT_EQ(always_fallback.ops(), never_fallback.ops());
  EXPECT_GT(always_fallback.ops(), 0U);
  EXPECT_GT(always_fallback.full_rebuilds(), 0U);
  EXPECT_EQ(never_fallback.full_rebuilds(), 0U);
  EXPECT_GT(never_fallback.touched(), 0U);
}

}  // namespace
}  // namespace bbng
