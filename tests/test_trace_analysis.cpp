// Trace-analytics tests: exact self/total attribution and folded stacks on
// a synthetic trace (values pinned by hand), the structural validator's
// rejection of malformed documents (truncated file, missing "ph",
// non-monotonic ts), partial-overlap detection, and the round trip from a
// real emitted trace through attribute_trace.
#include "obs/trace_analysis.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace bbng {
namespace {

std::string event(const char* name, std::uint64_t ts, std::uint64_t dur, int tid, int pid = 1) {
  std::ostringstream os;
  os << R"({"name": ")" << name << R"(", "ph": "X", "ts": )" << ts << R"(, "dur": )" << dur
     << R"(, "pid": )" << pid << R"(, "tid": )" << tid << R"(, "args": {}})";
  return os.str();
}

std::string trace_of(const std::vector<std::string>& events) {
  std::string body;
  for (const std::string& e : events) {
    if (!body.empty()) body += ", ";
    body += e;
  }
  return R"({"traceEvents": [)" + body + R"(], "displayTimeUnit": "ms"})";
}

// The hand-checked fixture. Thread 0 runs A[0,100) containing B[10,40)
// (itself containing C[15,20)) and a second B[50,70); thread 1 runs D[0,40).
// The event array is ts-sorted across threads, as the emitter guarantees.
//
//   A: count 1, total 100, self 100-(30+20) = 50
//   B: count 2, total 50,  self (30-5) + 20 = 45
//   C: count 1, total 5,   self 5
//   D: count 1, total 40,  self 40
std::string synthetic_trace() {
  return trace_of({
      event("A", 0, 100, 0),
      event("D", 0, 40, 1),
      event("B", 10, 30, 0),
      event("C", 15, 5, 0),
      event("B", 50, 20, 0),
  });
}

TEST(TraceAttribution, SyntheticTraceYieldsExactSelfAndTotalTimes) {
  const obs::TraceAttribution attribution = obs::attribute_trace(parse_json(synthetic_trace()));
  EXPECT_EQ(attribution.events, 5u);
  ASSERT_EQ(attribution.phases.size(), 4u);

  // Sorted by self_us descending, name ascending.
  EXPECT_EQ(attribution.phases[0].name, "A");
  EXPECT_EQ(attribution.phases[0].count, 1u);
  EXPECT_EQ(attribution.phases[0].total_us, 100u);
  EXPECT_EQ(attribution.phases[0].self_us, 50u);

  EXPECT_EQ(attribution.phases[1].name, "B");
  EXPECT_EQ(attribution.phases[1].count, 2u);
  EXPECT_EQ(attribution.phases[1].total_us, 50u);
  EXPECT_EQ(attribution.phases[1].self_us, 45u);

  EXPECT_EQ(attribution.phases[2].name, "D");
  EXPECT_EQ(attribution.phases[2].count, 1u);
  EXPECT_EQ(attribution.phases[2].total_us, 40u);
  EXPECT_EQ(attribution.phases[2].self_us, 40u);

  EXPECT_EQ(attribution.phases[3].name, "C");
  EXPECT_EQ(attribution.phases[3].count, 1u);
  EXPECT_EQ(attribution.phases[3].total_us, 5u);
  EXPECT_EQ(attribution.phases[3].self_us, 5u);

  // Self time is a partition of wall time: summing it recovers the span of
  // everything that ran (100 on thread 0 + 40 on thread 1).
  std::uint64_t total_self = 0;
  for (const obs::PhaseStat& phase : attribution.phases) total_self += phase.self_us;
  EXPECT_EQ(total_self, 140u);
}

TEST(TraceAttribution, FoldedStacksMatchTheFlamegraphFormatExactly) {
  const obs::TraceAttribution attribution = obs::attribute_trace(parse_json(synthetic_trace()));
  ASSERT_EQ(attribution.folded.size(), 4u);  // sorted by stack string
  EXPECT_EQ(attribution.folded[0], (std::pair<std::string, std::uint64_t>{"A", 50}));
  EXPECT_EQ(attribution.folded[1], (std::pair<std::string, std::uint64_t>{"A;B", 45}));
  EXPECT_EQ(attribution.folded[2], (std::pair<std::string, std::uint64_t>{"A;B;C", 5}));
  EXPECT_EQ(attribution.folded[3], (std::pair<std::string, std::uint64_t>{"D", 40}));

  std::ostringstream os;
  obs::write_folded(os, attribution);
  EXPECT_EQ(os.str(), "A 50\nA;B 45\nA;B;C 5\nD 40\n");
}

TEST(TraceAttribution, SameNamedThreadsOnDifferentPidsDoNotNest) {
  // Same tid on different pids must be attributed independently: these
  // overlap in ts but live in different processes, so no nesting (and no
  // partial-overlap error) may be inferred.
  const std::string trace = trace_of({
      event("P", 0, 100, 0, 1),
      event("Q", 50, 100, 0, 2),
  });
  const obs::TraceAttribution attribution = obs::attribute_trace(parse_json(trace));
  ASSERT_EQ(attribution.phases.size(), 2u);
  // Equal self time → name-ascending tiebreak.
  EXPECT_EQ(attribution.phases[0].name, "P");
  EXPECT_EQ(attribution.phases[0].self_us, 100u);
  EXPECT_EQ(attribution.phases[1].name, "Q");
  EXPECT_EQ(attribution.phases[1].self_us, 100u);
}

TEST(TraceAttribution, EqualTimestampParentsComeBeforeChildren) {
  // A zero-gap child starting at the parent's ts: the longer span is the
  // parent regardless of array order at that ts.
  const std::string trace = trace_of({
      event("inner", 0, 10, 0),
      event("outer", 0, 100, 0),
  });
  const obs::TraceAttribution attribution = obs::attribute_trace(parse_json(trace));
  ASSERT_EQ(attribution.phases.size(), 2u);
  EXPECT_EQ(attribution.phases[0].name, "outer");
  EXPECT_EQ(attribution.phases[0].self_us, 90u);
  EXPECT_EQ(attribution.phases[1].name, "inner");
  EXPECT_EQ(attribution.phases[1].self_us, 10u);
  ASSERT_EQ(attribution.folded.size(), 2u);
  EXPECT_EQ(attribution.folded[1].first, "outer;inner");
}

TEST(TraceAttribution, PartialOverlapOnOneThreadThrows) {
  // [0,10) and [5,15) on one thread cannot come from RAII spans.
  const std::string trace = trace_of({
      event("first", 0, 10, 0),
      event("second", 5, 10, 0),
  });
  EXPECT_THROW(static_cast<void>(obs::attribute_trace(parse_json(trace))),
               std::invalid_argument);
}

TEST(TraceAttribution, EmptyTraceAttributesToNothing) {
  const obs::TraceAttribution attribution = obs::attribute_trace(parse_json(trace_of({})));
  EXPECT_EQ(attribution.events, 0u);
  EXPECT_TRUE(attribution.phases.empty());
  EXPECT_TRUE(attribution.folded.empty());
  std::ostringstream os;
  obs::write_folded(os, attribution);
  EXPECT_EQ(os.str(), "");
}

// ---------------------------------------------------------------------------
// Malformed inputs (the validator runs first; attribute_trace inherits it).

TEST(TraceValidation, TruncatedDocumentFailsAtParse) {
  const std::string full = synthetic_trace();
  const std::string truncated = full.substr(0, full.size() / 2);
  EXPECT_THROW(static_cast<void>(parse_json(truncated)), JsonParseError);
}

TEST(TraceValidation, MissingPhFieldIsRejected) {
  const std::string trace = R"({"traceEvents": [
    {"name": "A", "ts": 0, "dur": 10, "pid": 1, "tid": 0, "args": {}}]})";
  EXPECT_THROW(static_cast<void>(obs::validate_trace_json(parse_json(trace))),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(obs::attribute_trace(parse_json(trace))),
               std::invalid_argument);
}

TEST(TraceValidation, NonMonotonicTimestampsAreRejected) {
  const std::string trace = trace_of({
      event("A", 100, 10, 0),
      event("B", 50, 10, 0),
  });
  EXPECT_THROW(static_cast<void>(obs::validate_trace_json(parse_json(trace))),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(obs::attribute_trace(parse_json(trace))),
               std::invalid_argument);
}

TEST(TraceValidation, NonXPhaseEventsAreRejected) {
  const std::string trace = R"({"traceEvents": [
    {"name": "A", "ph": "B", "ts": 0, "dur": 10, "pid": 1, "tid": 0, "args": {}}]})";
  EXPECT_THROW(static_cast<void>(obs::validate_trace_json(parse_json(trace))),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Round trip: a real emitted trace attributes cleanly.

TEST(TraceAttribution, EmittedTraceRoundTripsThroughAttribution) {
  obs::trace::begin();
  {
    // Sleeps keep every duration nonzero: a 0 µs parent cannot contain its
    // child, which would flake the folded-stack check below.
    obs::TraceSpan outer("rt.outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      obs::TraceSpan inner("rt.inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::string json = obs::trace::end_json();
  const obs::TraceAttribution attribution = obs::attribute_trace(parse_json(json));
  if (!obs::kCompiledIn) {
    EXPECT_EQ(attribution.events, 0u);
    return;
  }
  ASSERT_EQ(attribution.events, 2u);
  bool saw_outer = false;
  for (const obs::PhaseStat& phase : attribution.phases) {
    if (phase.name == "rt.outer") {
      saw_outer = true;
      EXPECT_EQ(phase.count, 1u);
      EXPECT_GE(phase.total_us, phase.self_us);
    }
  }
  EXPECT_TRUE(saw_outer);
  for (const auto& [stack, self] : attribution.folded) {
    if (stack == "rt.outer;rt.inner") {
      SUCCEED();
      return;
    }
  }
  ADD_FAILURE() << "expected an rt.outer;rt.inner folded stack";
}

}  // namespace
}  // namespace bbng
