// verify_nash_equilibrium: certified Nash verdicts from the solver
// subsystem. The headline claims: the paper's Theorem 2.3 constructions —
// including the Figure-1 four-phase instance (n = 22, z = 16, t = 19) — are
// certified as *exact* Nash equilibria (not merely swap-stable) in both cost
// versions and for several budget vectors; non-equilibria are disproved with
// a concrete deviation and a positive ε; and the Nash/swap gap the solver
// subsystem exists for is witnessed by a swap-stable state that is not Nash.
#include "game/equilibrium.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "constructions/equilibria.hpp"
#include "game/dynamics.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace bbng {
namespace {

void expect_certified_nash(const Digraph& g, const std::string& label) {
  for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
    const NashReport report = verify_nash_equilibrium(g, version);
    EXPECT_TRUE(report.stable) << label << " " << to_string(version)
                               << " deviator " << report.deviator
                               << " regret " << report.epsilon;
    EXPECT_TRUE(report.certified) << label << " " << to_string(version);
    EXPECT_EQ(report.epsilon, 0u) << label << " " << to_string(version);
    EXPECT_EQ(report.players_certified, g.num_vertices());
  }
}

TEST(NashVerify, Figure1ConstructionIsCertifiedExactNash) {
  // The four-phase Case-2 construction of Figure 1. The largest budget is 5
  // (C(21,5) = 20349 candidate strategies per such player), so this is a
  // real branch-and-bound workout, not a toy.
  const BudgetGame game(figure1_budgets());
  ASSERT_EQ(classify_construction(game), EquilibriumCase::FourPhaseCase2);
  expect_certified_nash(construct_equilibrium(game), "figure1");
}

TEST(NashVerify, Theorem23ConstructionsAreCertifiedNashForSeveralBudgetVectors) {
  // One vector per branch of the Theorem 2.3 proof, plus mixtures.
  const std::vector<std::vector<std::uint32_t>> vectors = {
      {3, 1, 1, 1, 1, 1, 1, 0},           // Case 1 (hub): b_max ≥ z
      {0, 0, 0, 0, 2, 2, 2, 2, 2},        // Case 2 flavour: z > b_max
      {0, 0, 0, 1, 1, 1},                 // Case 3: σ < n−1, disconnected tail
      {1, 1, 1, 1, 1, 1, 1, 1},           // unit budgets
      {4, 3, 2, 1, 0, 0, 1, 2},           // mixed
  };
  for (const auto& budgets : vectors) {
    const BudgetGame game(budgets);
    std::string label = "budgets{";
    for (const auto b : budgets) label += std::to_string(b) + ",";
    label += "}";
    expect_certified_nash(construct_equilibrium(game), label);
  }
}

TEST(NashVerify, DisprovesNonEquilibriaWithPositiveEpsilon) {
  // A directed path is far from an equilibrium in the SUM version: interior
  // players would rather point at the middle.
  const Digraph path = path_digraph(8);
  const NashReport report = verify_nash_equilibrium(path, CostVersion::Sum);
  EXPECT_FALSE(report.stable);
  EXPECT_TRUE(report.certified);  // the disproof is still a certified scan
  EXPECT_GT(report.epsilon, 0u);
  EXPECT_LT(report.deviator, path.num_vertices());
  // The reported deviation must be a genuine improvement.
  EXPECT_LT(report.new_cost, report.old_cost);
  EXPECT_GE(report.epsilon, report.old_cost - report.new_cost);
}

TEST(NashVerify, WitnessesTheSwapStableButNotNashGap) {
  // The subsystem's raison d'être (Theorem 2.1 motivation): swap stability
  // is necessary but not sufficient for Nash. Drive random instances to
  // swap-stability with FirstImprovingSwap dynamics, then ask the certified
  // verifier; at least one swap-stable state must be refuted. The MAX
  // version with generous budgets (σ ∈ [2n, 3n)) is where the gap shows:
  // the max objective plateaus under single swaps while a coordinated
  // multi-head move still improves.
  Rng rng(20110604);  // deterministic corpus → deterministic witness count
  int swap_stable = 0;
  int gap_witnesses = 0;
  for (int round = 0; round < 40; ++round) {
    const std::uint32_t n = 6 + static_cast<std::uint32_t>(round % 4);
    std::uint64_t sigma = 2 * std::uint64_t{n} + rng.next_below(n);
    sigma = std::min(sigma, std::uint64_t{n} * (n - 1));
    const Digraph initial = random_profile(random_budgets(n, sigma, rng), rng);
    DynamicsConfig config;
    config.version = CostVersion::Max;
    config.policy = MovePolicy::FirstImprovingSwap;
    config.max_rounds = 400;
    const DynamicsResult rest = run_best_response_dynamics(initial, config);
    if (!rest.converged) continue;
    const EquilibriumReport swap_report = verify_swap_equilibrium(rest.graph, CostVersion::Max);
    ASSERT_TRUE(swap_report.stable);  // converged FirstImprovingSwap ⇒ swap-stable
    ++swap_stable;
    const NashReport nash = verify_nash_equilibrium(rest.graph, CostVersion::Max);
    ASSERT_TRUE(nash.certified);
    if (!nash.stable) ++gap_witnesses;
  }
  EXPECT_GT(swap_stable, 10);
  EXPECT_GT(gap_witnesses, 0) << "no swap-stable-but-not-Nash witness in the corpus";
}

TEST(NashVerify, AgreesWithExhaustiveVerifierOnSmallGames) {
  Rng rng(17);
  for (int round = 0; round < 30; ++round) {
    const std::uint32_t n = 5 + static_cast<std::uint32_t>(round % 3);
    const std::uint64_t sigma = n - 1 + rng.next_below(4);
    const Digraph g = random_profile(random_budgets(n, sigma, rng), rng);
    for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
      const EquilibriumReport exhaustive = verify_equilibrium(g, version);
      const NashReport certified = verify_nash_equilibrium(g, version);
      ASSERT_TRUE(certified.certified);
      ASSERT_EQ(certified.stable, exhaustive.stable)
          << "round " << round << " " << to_string(version);
      if (!certified.stable) {
        ASSERT_EQ(certified.deviator, exhaustive.deviator);
        ASSERT_EQ(certified.old_cost, exhaustive.old_cost);
        ASSERT_EQ(certified.new_cost, exhaustive.new_cost);
      }
    }
  }
}

TEST(NashVerify, TruncatedBudgetNeverClaimsCertification) {
  Rng rng(2);
  const Digraph g = random_profile(random_budgets(10, 14, rng), rng);
  SolverBudget budget;
  budget.node_limit = 1;
  const NashReport report = verify_nash_equilibrium(g, CostVersion::Sum, budget);
  EXPECT_FALSE(report.certified);
  EXPECT_LT(report.players_certified, g.num_vertices());
}

TEST(NashVerify, UnknownSolverNameThrows) {
  const Digraph g = path_digraph(4);
  EXPECT_THROW(
      (void)verify_nash_equilibrium(g, CostVersion::Sum, {}, "not_a_solver"),
      std::invalid_argument);
}

}  // namespace
}  // namespace bbng
