// Runner determinism tests — the engine's core contract: a campaign's JSONL
// artifact is byte-identical at any thread count, any checkpoint cadence,
// and across forced kill+resume at several job indices (including a chain
// of kills), because jobs are pure functions committed in id order and the
// checkpoint manifest journals the committed prefix exactly.
#include "engine/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/sinks.hpp"

namespace bbng {
namespace {

// 2 scenarios × small grids = 28 jobs, mixing two task kinds.
const char* kCampaignText = R"({
  "name": "runner_probe",
  "base_seed": 3,
  "scenarios": [
    {"name": "dyn", "task": "dynamics", "version": "sum",
     "budgets": {"family": "tree"}, "grid": {"n": [6, 8]},
     "seeds": {"begin": 0, "end": 10},
     "params": {"max_rounds": 100, "exact_limit": 5000}},
    {"name": "swap", "task": "swap_equilibrium", "version": "max",
     "budgets": {"family": "unit"}, "grid": {"n": [7]},
     "seeds": {"begin": 0, "end": 8}}
  ]
})";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class EngineRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    campaign_ = parse_campaign_spec(kCampaignText);
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("bbng_engine_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& leaf) const { return (dir_ / leaf).string(); }

  [[nodiscard]] RunnerConfig config(const std::string& leaf, unsigned threads,
                                    std::uint64_t checkpoint_every = 5) const {
    RunnerConfig cfg;
    cfg.output_path = path(leaf);
    cfg.threads = threads;
    cfg.checkpoint_every = checkpoint_every;
    return cfg;
  }

  /// Uninterrupted single-threaded run — the reference bytes.
  [[nodiscard]] std::string reference_bytes() {
    const RunnerConfig cfg = config("reference.jsonl", 1);
    const RunReport report = run_campaign(campaign_, kCampaignText, cfg);
    EXPECT_TRUE(report.completed);
    EXPECT_EQ(report.committed, campaign_.num_jobs());
    return read_file(cfg.output_path);
  }

  CampaignSpec campaign_;
  std::filesystem::path dir_;
};

TEST_F(EngineRunnerTest, ThreadCountDoesNotChangeTheBytes) {
  const std::string reference = reference_bytes();
  for (const unsigned threads : {2u, 4u, 7u}) {
    const RunnerConfig cfg =
        config("t" + std::to_string(threads) + ".jsonl", threads, /*checkpoint_every=*/3);
    const RunReport report = run_campaign(campaign_, kCampaignText, cfg);
    EXPECT_TRUE(report.completed);
    EXPECT_EQ(read_file(cfg.output_path), reference) << "threads=" << threads;
  }
}

TEST_F(EngineRunnerTest, WindowAndCadenceDoNotChangeTheBytes) {
  const std::string reference = reference_bytes();
  for (const std::uint64_t window : {1u, 3u, 100u}) {
    RunnerConfig cfg = config("w" + std::to_string(window) + ".jsonl", 2, 1);
    cfg.window = window;
    const RunReport report = run_campaign(campaign_, kCampaignText, cfg);
    EXPECT_TRUE(report.completed);
    EXPECT_EQ(read_file(cfg.output_path), reference) << "window=" << window;
  }
}

TEST_F(EngineRunnerTest, KillAndResumeIsByteIdentical) {
  const std::string reference = reference_bytes();
  const std::uint64_t total = campaign_.num_jobs();
  // Kill after the first commit, mid-run (off and on a checkpoint boundary),
  // and one short of completion; resume at a different thread count.
  for (const std::uint64_t kill_at : {std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{15},
                                      total - 1}) {
    const std::string leaf = "kill" + std::to_string(kill_at) + ".jsonl";
    RunnerConfig cfg = config(leaf, 1);
    cfg.halt_after = kill_at;
    const RunReport halted = run_campaign(campaign_, kCampaignText, cfg);
    EXPECT_FALSE(halted.completed);
    EXPECT_EQ(halted.committed, kill_at);
    // A halted run must not have produced a summary (it lands only after the
    // full artifact, right before the completed manifest).
    EXPECT_FALSE(std::filesystem::exists(summary_path_for(cfg.output_path)));

    RunnerConfig resume_cfg = config(leaf, 3);
    const RunReport resumed = resume_campaign(campaign_, kCampaignText, resume_cfg);
    EXPECT_TRUE(resumed.completed);
    EXPECT_EQ(resumed.committed, total);
    // The resumed run re-executes only from the last checkpoint, never from 0.
    EXPECT_EQ(resumed.committed_before + resumed.executed, total);
    EXPECT_EQ(resumed.committed_before, kill_at - (kill_at % 5));
    EXPECT_EQ(read_file(resume_cfg.output_path), reference) << "kill_at=" << kill_at;
    EXPECT_EQ(read_file(summary_path_for(resume_cfg.output_path)),
              read_file(summary_path_for(path("reference.jsonl"))));
  }
}

TEST_F(EngineRunnerTest, ChainOfKillsStillConverges) {
  const std::string reference = reference_bytes();
  const std::string leaf = "chain.jsonl";
  RunnerConfig cfg = config(leaf, 2, /*checkpoint_every=*/4);
  cfg.halt_after = 3;
  EXPECT_FALSE(run_campaign(campaign_, kCampaignText, cfg).completed);
  for (const std::uint64_t kill_at : {std::uint64_t{11}, std::uint64_t{19}}) {
    RunnerConfig again = config(leaf, 1, /*checkpoint_every=*/4);
    again.halt_after = kill_at;
    const RunReport report = resume_campaign(campaign_, kCampaignText, again);
    EXPECT_FALSE(report.completed);
    EXPECT_EQ(report.committed, kill_at);
  }
  const RunReport last = resume_campaign(campaign_, kCampaignText, config(leaf, 4));
  EXPECT_TRUE(last.completed);
  EXPECT_EQ(read_file(path(leaf)), reference);
}

TEST_F(EngineRunnerTest, ResumeOfACompletedRunIsANoOp) {
  const RunnerConfig cfg = config("done.jsonl", 1);
  EXPECT_TRUE(run_campaign(campaign_, kCampaignText, cfg).completed);
  const std::string before = read_file(cfg.output_path);
  const RunReport report = resume_campaign(campaign_, kCampaignText, cfg);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.executed, 0u);
  EXPECT_EQ(read_file(cfg.output_path), before);
}

TEST_F(EngineRunnerTest, ResumeRefusesADifferentSpec) {
  RunnerConfig cfg = config("spec.jsonl", 1);
  cfg.halt_after = 4;
  EXPECT_FALSE(run_campaign(campaign_, kCampaignText, cfg).completed);
  const std::string other_text = std::string(kCampaignText) + "\n";
  const CampaignSpec other = parse_campaign_spec(other_text);
  try {
    static_cast<void>(resume_campaign(other, other_text, cfg));
    FAIL() << "resume accepted a different spec";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("different spec"), std::string::npos)
        << error.what();
  }
}

TEST_F(EngineRunnerTest, ResumeWithoutACheckpointRefuses) {
  EXPECT_THROW(
      static_cast<void>(resume_campaign(campaign_, kCampaignText, config("ghost.jsonl", 1))),
      std::invalid_argument);
}

TEST_F(EngineRunnerTest, RunRefusesToClobberWithoutOverwrite) {
  const RunnerConfig cfg = config("clobber.jsonl", 1);
  EXPECT_TRUE(run_campaign(campaign_, kCampaignText, cfg).completed);
  EXPECT_THROW(static_cast<void>(run_campaign(campaign_, kCampaignText, cfg)),
               std::invalid_argument);
  RunnerConfig forced = cfg;
  forced.overwrite = true;
  EXPECT_TRUE(run_campaign(campaign_, kCampaignText, forced).completed);
}

TEST_F(EngineRunnerTest, TruncatedArtifactIsRejected) {
  const std::string leaf = "truncated.jsonl";
  RunnerConfig cfg = config(leaf, 1);
  cfg.halt_after = 10;
  EXPECT_FALSE(run_campaign(campaign_, kCampaignText, cfg).completed);
  // Corrupt the artifact below the journalled offset.
  std::filesystem::resize_file(path(leaf), 10);
  try {
    static_cast<void>(resume_campaign(campaign_, kCampaignText, cfg));
    FAIL() << "resume accepted a corrupt artifact";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("shorter than its checkpoint"), std::string::npos);
  }
}

TEST_F(EngineRunnerTest, HeaderRecordsHostMetadataAndSummaryAggregates) {
  const RunnerConfig cfg = config("artifact.jsonl", 2);
  const RunReport report = run_campaign(campaign_, kCampaignText, cfg);
  EXPECT_TRUE(report.completed);

  const JsonlFile file = read_jsonl(cfg.output_path);
  EXPECT_EQ(file.header.at("format").as_string(), "bbng-jsonl");
  EXPECT_EQ(file.header.at("campaign").as_string(), "runner_probe");
  EXPECT_EQ(file.header.at("spec_fingerprint").as_string(), spec_fingerprint(kCampaignText));
  EXPECT_EQ(file.header.at("total_jobs").as_uint(), campaign_.num_jobs());
  const JsonValue& host = file.header.at("host");
  // host_threads is pinned to the machine's hardware concurrency — and only
  // that. The runner's own thread count (cfg.threads = 2 here) must never
  // leak into the header: artifacts are byte-identical at any thread count,
  // so the header can only record machine facts, not run configuration.
  // Clamped to ≥ 1 because hardware_concurrency() may return 0 ("not
  // computable") — a zero-thread host would be nonsense metadata.
  EXPECT_TRUE(host.at("host_threads").is_int());
  EXPECT_EQ(host.at("host_threads").as_uint(),
            static_cast<std::uint64_t>(
                std::max(1U, std::thread::hardware_concurrency())));
  EXPECT_FALSE(host.at("compiler").as_string().empty());
  EXPECT_FALSE(host.at("build_type").as_string().empty());
  EXPECT_FALSE(host.at("git_sha").as_string().empty());
  ASSERT_EQ(file.records.size(), campaign_.num_jobs());
  for (std::size_t i = 0; i < file.records.size(); ++i) {
    EXPECT_EQ(file.records[i].at("job").as_uint(), i);  // commit order == job order
  }

  const JsonValue summary = parse_json(read_file(summary_path_for(cfg.output_path)));
  // The atomic tmp+rename summary write must not leave its tmp file behind.
  EXPECT_FALSE(std::filesystem::exists(summary_path_for(cfg.output_path) + ".tmp"));
  EXPECT_EQ(summary.at("jobs").as_uint(), campaign_.num_jobs());
  ASSERT_EQ(summary.at("scenarios").items().size(), 2u);
  const JsonValue& dyn = summary.at("scenarios").items()[0];
  EXPECT_EQ(dyn.at("name").as_string(), "dyn");
  EXPECT_EQ(dyn.at("jobs").as_uint(), 20u);
  EXPECT_EQ(dyn.at("numbers").at("rounds").at("count").as_uint(), 20u);
  // converged is a bool field: counted, not averaged.
  EXPECT_LE(dyn.at("bool_true_counts").at("converged").as_uint(), 20u);
  // Numeric aggregates carry a bootstrap CI bracketing the mean: bare means
  // mislead at campaign sample sizes.
  const JsonValue& rounds = dyn.at("numbers").at("rounds");
  EXPECT_LE(rounds.at("ci95_lower").as_double(), rounds.at("mean").as_double());
  EXPECT_GE(rounds.at("ci95_upper").as_double(), rounds.at("mean").as_double());
  EXPECT_GE(rounds.at("ci95_lower").as_double(), rounds.at("min").as_double());
  EXPECT_LE(rounds.at("ci95_upper").as_double(), rounds.at("max").as_double());
}

TEST_F(EngineRunnerTest, ProgressGoesToStderrAndNeverTheArtifact) {
  const std::string reference = reference_bytes();
  RunnerConfig cfg = config("progress.jsonl", 2);
  cfg.progress = true;
  cfg.progress_interval_seconds = 0;  // report after every window
  ::testing::internal::CaptureStderr();
  const RunReport report = run_campaign(campaign_, kCampaignText, cfg);
  const std::string stderr_text = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(report.completed);
  EXPECT_NE(stderr_text.find("progress:"), std::string::npos) << stderr_text;
  EXPECT_NE(stderr_text.find("eta"), std::string::npos) << stderr_text;
  // Progress must not perturb the artifact bytes.
  EXPECT_EQ(read_file(cfg.output_path), reference);
}

TEST_F(EngineRunnerTest, FirstProgressWindowPrintsUnknownEtaThenExtrapolates) {
  RunnerConfig cfg = config("progress_eta.jsonl", 2);
  cfg.progress = true;
  cfg.progress_interval_seconds = 0;  // report after every job
  cfg.window = 7;                     // 4 commit windows across the 28 jobs
  ::testing::internal::CaptureStderr();
  EXPECT_TRUE(run_campaign(campaign_, kCampaignText, cfg).completed);
  const std::string stderr_text = ::testing::internal::GetCapturedStderr();

  std::vector<std::string> lines;
  std::istringstream stream(stderr_text);
  for (std::string line; std::getline(stream, line);) {
    if (line.rfind("progress:", 0) == 0) lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 2u) << stderr_text;
  // Before any window has committed there is no completion rate to
  // extrapolate: every first-window tick must say `eta ?` instead of
  // dividing a near-zero elapsed time into an absurd estimate.
  EXPECT_NE(lines.front().find("eta ?"), std::string::npos) << lines.front();
  // Once a window has committed, the ETA becomes a numeric extrapolation
  // (the "s" suffix of the seconds formatter, never "?").
  bool saw_numeric_eta = false;
  for (const std::string& line : lines) {
    const std::size_t at = line.find("eta ");
    ASSERT_NE(at, std::string::npos) << line;
    if (line[at + 4] != '?') {
      saw_numeric_eta = true;
      EXPECT_EQ(line.back(), 's') << line;
    }
  }
  EXPECT_TRUE(saw_numeric_eta) << stderr_text;
}

TEST_F(EngineRunnerTest, CompletionWritesAHostSidecarWithPeakRss) {
  const RunnerConfig cfg = config("sidecar.jsonl", 2);
  EXPECT_TRUE(run_campaign(campaign_, kCampaignText, cfg).completed);

  const std::string sidecar_path = obs_host_path_for(cfg.output_path);
  EXPECT_EQ(sidecar_path, cfg.output_path + ".obs_host.json");
  const JsonValue sidecar = parse_json(read_file(sidecar_path));
  EXPECT_EQ(sidecar.at("format").as_string(), "bbng-obs-host");
  EXPECT_EQ(sidecar.at("campaign").as_string(), "runner_probe");
  EXPECT_GT(sidecar.at("elapsed_seconds").as_double(), 0.0);

  // peak_rss_kb lives in the sidecar's host block, NOT the artifact header:
  // VmHWM differs between a straight run and a kill/resume pair, and the
  // header must stay byte-identical across both (the tests above prove the
  // artifact does — this proves the memory figure still gets recorded).
  const JsonValue& host = sidecar.at("host");
  EXPECT_GT(host.at("peak_rss_kb").as_uint(), 0u);
  EXPECT_GT(host.at("host_threads").as_uint(), 0u);
  const JsonlFile artifact = read_jsonl(cfg.output_path);
  EXPECT_EQ(artifact.header.at("host").find("peak_rss_kb"), nullptr)
      << "the deterministic header must not carry machine-varying memory";

  if (sidecar.at("obs_compiled").as_bool()) {
    // A completed run always timed its windows and jobs.
    const JsonValue& histograms = sidecar.at("histograms");
    for (const char* name : {"runner.window", "runner.commit", "engine.job"}) {
      const JsonValue* hist = histograms.find(name);
      ASSERT_NE(hist, nullptr) << name;
      EXPECT_GT(hist->at("count").as_uint(), 0u) << name;
      EXPECT_GE(hist->at("p90_us").as_double(), hist->at("p50_us").as_double()) << name;
      EXPECT_GE(hist->at("p99_us").as_double(), hist->at("p90_us").as_double()) << name;
      EXPECT_GE(static_cast<double>(hist->at("max_us").as_uint()),
                hist->at("p50_us").as_double())
          << name;
    }
    const JsonValue* rss = sidecar.at("gauges").find("mem.vm_rss_kb");
    ASSERT_NE(rss, nullptr);
    EXPECT_GE(rss->at("samples").as_uint(), 1u) << "the final stop() sample at minimum";
    EXPECT_GT(rss->at("last").as_double(), 0.0);
  } else {
    EXPECT_TRUE(sidecar.at("histograms").members().empty());
  }
}

TEST_F(EngineRunnerTest, HaltedRunsLeaveNoSidecarUntilCompletion) {
  RunnerConfig cfg = config("halted.jsonl", 2);
  cfg.halt_after = 5;
  EXPECT_FALSE(run_campaign(campaign_, kCampaignText, cfg).completed);
  EXPECT_FALSE(std::filesystem::exists(obs_host_path_for(cfg.output_path)))
      << "telemetry is summarised at completion, like the summary itself";
  const RunnerConfig resume_cfg = config("halted.jsonl", 2);
  EXPECT_TRUE(resume_campaign(campaign_, kCampaignText, resume_cfg).completed);
  EXPECT_TRUE(std::filesystem::exists(obs_host_path_for(cfg.output_path)));
}

}  // namespace
}  // namespace bbng
