// Registry contract tests: lookup by name, the error message for unknown
// names (spec validation surfaces it verbatim), and — the load-bearing one —
// bit-compatibility of the "swap" backend with the pre-registry
// BestResponseSolver::solve ladder, which now routes through it.
#include "solver/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "game/best_response.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace bbng {
namespace {

TEST(SolverRegistry, ListsEveryBackendWithDescriptions) {
  const auto solvers = list_solvers();
  ASSERT_EQ(solvers.size(), 3u);
  EXPECT_EQ(solvers[0].first, "swap");
  EXPECT_EQ(solvers[1].first, "exact_bb");
  EXPECT_EQ(solvers[2].first, "portfolio");
  for (const auto& [name, description] : solvers) {
    EXPECT_FALSE(description.empty()) << name;
    EXPECT_EQ(find_solver(name).name(), name);
    EXPECT_TRUE(solver_exists(name));
  }
  EXPECT_EQ(solver_names().size(), 3u);
}

TEST(SolverRegistry, UnknownNameThrowsNamingTheOffenderAndTheOptions) {
  EXPECT_FALSE(solver_exists("simplex"));
  try {
    (void)find_solver("simplex");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("simplex"), std::string::npos) << what;
    EXPECT_NE(what.find("swap"), std::string::npos) << what;
    EXPECT_NE(what.find("exact_bb"), std::string::npos) << what;
    EXPECT_NE(what.find("portfolio"), std::string::npos) << what;
  }
}

TEST(SolverRegistry, SwapBackendIsBitCompatibleWithTheLadder) {
  // BestResponseSolver::solve delegates to the "swap" backend; both exact
  // and heuristic regimes must return identical strategies and counters to
  // what the pre-registry ladder produced (the backend IS that ladder).
  const BestResponseBackend& swap = find_solver("swap");
  Rng rng(606);
  for (int round = 0; round < 40; ++round) {
    const std::uint32_t n = 5 + static_cast<std::uint32_t>(round % 8);
    const std::uint64_t sigma = n / 2 + rng.next_below(3 * n / 2 + 1);
    const Digraph g = random_profile(random_budgets(n, sigma, rng), rng);
    for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
      // exact_limit 1 forces the heuristic regime; the default allows exact.
      for (const std::uint64_t limit : {std::uint64_t{1}, std::uint64_t{2'000'000}}) {
        const BestResponseSolver ladder(version, limit);
        for (Vertex u = 0; u < n; ++u) {
          if (g.out_degree(u) == 0) continue;
          const BestResponse via_solver = ladder.solve(g, u);
          SolverBudget budget;
          budget.node_limit = limit;
          const SolverResult via_registry = swap.solve(g, u, version, budget);
          ASSERT_EQ(via_solver.cost, via_registry.cost);
          ASSERT_EQ(via_solver.strategy, via_registry.strategy);
          ASSERT_EQ(via_solver.current_cost, via_registry.current_cost);
          ASSERT_EQ(via_solver.evaluated, via_registry.evaluated);
          ASSERT_EQ(via_solver.exact, via_registry.optimal);
        }
      }
    }
  }
}

TEST(SolverRegistry, SwapNodeLimitZeroDisablesTheExactPath) {
  // exact_limit = 0 has always meant "heuristic moves only"; the registry
  // wrapper must not reinterpret it as "use a default enumeration cap".
  Rng rng(12);
  const Digraph g = random_profile(random_budgets(8, 10, rng), rng);
  const BestResponseBackend& swap = find_solver("swap");
  SolverBudget budget;
  budget.node_limit = 0;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (g.out_degree(u) == 0) continue;
    const SolverResult result = swap.solve(g, u, CostVersion::Sum, budget);
    EXPECT_FALSE(result.optimal);  // enumeration never ran
    const BestResponseSolver ladder(CostVersion::Sum, /*exact_limit=*/0);
    const BestResponse reference = ladder.solve(g, u);
    EXPECT_EQ(result.cost, reference.cost);
    EXPECT_EQ(result.strategy, reference.strategy);
  }
}

TEST(SolverRegistry, EveryBackendHonoursTheCommonContract) {
  // cost ≤ current_cost, lower_bound ≤ cost, and a sorted strategy of
  // exactly budget size — for every registered backend on one instance.
  Rng rng(41);
  const std::uint64_t sigma = 12;
  const Digraph g = random_profile(random_budgets(9, sigma, rng), rng);
  for (const std::string& name : solver_names()) {
    const BestResponseBackend& backend = find_solver(name);
    for (Vertex u = 0; u < g.num_vertices(); ++u) {
      const SolverResult result = backend.solve(g, u, CostVersion::Sum);
      EXPECT_EQ(result.solver, name);
      EXPECT_LE(result.cost, result.current_cost) << name;
      EXPECT_LE(result.lower_bound, result.cost) << name;
      EXPECT_EQ(result.strategy.size(), g.out_degree(u)) << name;
      EXPECT_TRUE(std::is_sorted(result.strategy.begin(), result.strategy.end())) << name;
    }
  }
}

}  // namespace
}  // namespace bbng
