// Portfolio-solver guarantees: on a 200-seed corpus the portfolio incumbent
// is never worse than the swap-descent baseline (it races that very
// baseline), never worse than staying put, exactly optimal wherever the
// exhaustive solver can check, and deterministic per instance (the facility
// seeding derives its randomness from the instance, not from wall clock).
#include "solver/portfolio.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "game/best_response.hpp"
#include "game/strategy_eval.hpp"
#include "graph/generators.hpp"
#include "solver/registry.hpp"
#include "util/rng.hpp"

namespace bbng {
namespace {

Digraph corpus_instance(std::uint32_t n, Rng& rng) {
  const std::uint64_t sigma = n / 2 + rng.next_below(3 * n / 2 + 1);
  return random_profile(random_budgets(n, sigma, rng), rng);
}

TEST(SolverPortfolio, NeverWorseThanSwapBaselineOn200Seeds) {
  const PortfolioSolver portfolio;
  Rng rng(2024);
  for (int round = 0; round < 200; ++round) {
    const std::uint32_t n = 6 + static_cast<std::uint32_t>(round % 10);
    const Digraph g = corpus_instance(n, rng);
    for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
      const BestResponseSolver baseline_solver(version);
      for (Vertex u = 0; u < n; ++u) {
        if (g.out_degree(u) == 0) continue;
        const BestResponse swap_baseline = baseline_solver.swap_improve(g, u);
        const SolverResult result = portfolio.solve(g, u, version);
        ASSERT_LE(result.cost, swap_baseline.cost)
            << "round " << round << " u " << u << " " << to_string(version);
        ASSERT_LE(result.cost, result.current_cost);
        ASSERT_LE(result.lower_bound, result.cost);
        // The strategy must realise the claimed cost at full budget size.
        ASSERT_EQ(result.strategy.size(), g.out_degree(u));
        const StrategyEvaluator eval(g, u, version);
        StrategyEvaluator::Scratch scratch(n);
        ASSERT_EQ(eval.evaluate(result.strategy, scratch), result.cost);
      }
    }
  }
}

TEST(SolverPortfolio, OptimalWhereExhaustiveSearchCanCheck) {
  // The portfolio is a heuristic, but on tiny instances we can measure its
  // gap: it must never beat the optimum (sanity) and its certificate flag
  // must never claim optimality it does not have.
  const PortfolioSolver portfolio;
  Rng rng(31337);
  for (int round = 0; round < 60; ++round) {
    const std::uint32_t n = 5 + static_cast<std::uint32_t>(round % 4);
    const Digraph g = corpus_instance(n, rng);
    for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
      const BestResponseSolver brute(version);
      for (Vertex u = 0; u < n; ++u) {
        if (g.out_degree(u) == 0) continue;
        const BestResponse reference = brute.exact(g, u);
        const SolverResult result = portfolio.solve(g, u, version);
        ASSERT_GE(result.cost, reference.cost);
        if (result.optimal) {
          ASSERT_EQ(result.cost, reference.cost);
        }
      }
    }
  }
}

TEST(SolverPortfolio, DeterministicPerInstance) {
  Rng rng(8);
  const Digraph g = corpus_instance(12, rng);
  const BestResponseBackend& portfolio = find_solver("portfolio");
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const SolverResult a = portfolio.solve(g, u, CostVersion::Sum);
    const SolverResult b = portfolio.solve(g, u, CostVersion::Sum);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.strategy, b.strategy);
    EXPECT_EQ(a.evaluated, b.evaluated);
  }
}

TEST(SolverPortfolio, RespectsTheDeadlineButStaysValid) {
  // An already-expired deadline may skip racers, never validity: the result
  // still beats-or-equals staying put and evaluates correctly.
  Rng rng(55);
  const Digraph g = corpus_instance(10, rng);
  const PortfolioSolver portfolio;
  SolverBudget budget;
  budget.deadline_seconds = 1e-9;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (g.out_degree(u) == 0) continue;
    const SolverResult result = portfolio.solve(g, u, CostVersion::Max, budget);
    EXPECT_LE(result.cost, result.current_cost);
    const StrategyEvaluator eval(g, u, CostVersion::Max);
    StrategyEvaluator::Scratch scratch(g.num_vertices());
    EXPECT_EQ(eval.evaluate(result.strategy, scratch), result.cost);
  }
}

}  // namespace
}  // namespace bbng
