// Differential suite for the batched multi-source BFS engine
// (graph/multi_bfs.hpp). The engine's contract is bit-identity: a packed
// 64-lane sweep must return, per lane, exactly what the per-seed
// bfs_workspace() witness returns — aggregates AND streamed distances —
// on connected and disconnected graphs, on both graph cores, for full,
// ragged, and duplicate-source batches. On top of the 200-random-graph
// differential, the suite pins the rewired consumers (eccentricities /
// diameter / APSP / average_distance, all_costs / social_cost, and the
// verify_nash_equilibrium prepass) against their per-seed opt-out paths,
// pins the Workspace lane-plane restore + zero-steady-state-allocation
// protocol, and pins the 64-bit SUM aggregate width with a path graph whose
// distance sum exceeds 2³². A fuzz walk in the test_fuzz_dynamic_bfs.cpp
// style mutates both cores in lockstep and re-audits after every step.
#include "graph/multi_bfs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "game/cost.hpp"
#include "game/equilibrium.hpp"
#include "graph/bfs.hpp"
#include "graph/csr_graph.hpp"
#include "graph/distances.hpp"
#include "graph/dynamic_bfs.hpp"
#include "graph/generators.hpp"
#include "graph/ugraph.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/workspace.hpp"
#include "util/rng.hpp"

namespace bbng {
namespace {

std::vector<Vertex> all_vertices(std::uint32_t n) {
  std::vector<Vertex> sources(n);
  for (Vertex v = 0; v < n; ++v) sources[v] = v;
  return sources;
}

void expect_aggregates_equal(const BfsAggregates& got, const BfsAggregates& want,
                             const char* what, std::size_t lane) {
  ASSERT_EQ(got.reached, want.reached) << what << " lane " << lane;
  ASSERT_EQ(got.max_dist, want.max_dist) << what << " lane " << lane;
  ASSERT_EQ(got.sum_dist, want.sum_dist) << what << " lane " << lane;
}

/// Per-seed witness + cross-core audit for one batch of sources: vector-core
/// and CSR-core engines must match bfs_workspace() per lane and each other on
/// every work counter.
void expect_batch_matches_per_seed(const UGraph& g, std::span<const Vertex> sources,
                                   const char* what) {
  MultiBfs engine(g);
  const std::vector<BfsAggregates> batched = engine.run(sources);

  const CsrUGraph csr(g);
  CsrMultiBfs csr_engine(csr);
  const std::vector<BfsAggregates> csr_batched = csr_engine.run(sources);

  Workspace witness;
  std::uint64_t total_reached = 0;
  ASSERT_EQ(batched.size(), sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const BfsAggregates want = bfs_workspace(g, sources[i], witness);
    expect_aggregates_equal(batched[i], want, what, i);
    expect_aggregates_equal(csr_batched[i], want, what, i);
    total_reached += want.reached;
  }

  // `settled` is exactly the (lane, vertex) pairs the per-seed path scans,
  // and all four counters are order-independent sums, so the two cores must
  // agree bit-for-bit.
  const MultiBfsStats& stats = engine.stats();
  EXPECT_EQ(stats.settled, total_reached) << what;
  EXPECT_EQ(stats.sweeps, (sources.size() + MultiBfs::kLanes - 1) / MultiBfs::kLanes) << what;
  EXPECT_EQ(csr_engine.stats().sweeps, stats.sweeps) << what;
  EXPECT_EQ(csr_engine.stats().levels, stats.levels) << what;
  EXPECT_EQ(csr_engine.stats().row_scans, stats.row_scans) << what;
  EXPECT_EQ(csr_engine.stats().settled, stats.settled) << what;
}

TEST(MultiBfs, TwoHundredRandomGraphsMatchPerSeedOnBothCores) {
  // Mixed densities: p = 0.03 graphs at these sizes are mostly disconnected
  // (isolated vertices included), so unreached lanes and multi-component
  // aggregates are exercised, not just the connected happy path.
  const double densities[] = {0.03, 0.1, 0.35};
  Rng rng(0xB1F5'0001);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t n = 1 + static_cast<std::uint32_t>(rng.next_below(80));
    const double p = densities[trial % 3];
    const UGraph g = erdos_renyi(n, p, rng);
    const std::vector<Vertex> sources = all_vertices(n);
    expect_batch_matches_per_seed(g, sources, "random");
  }
}

TEST(MultiBfs, RaggedAndDuplicateSourceBatches) {
  Rng rng(0xB1F5'0002);
  const UGraph g = erdos_renyi(90, 0.06, rng);
  // Sizes straddling the 64-lane sweep boundary, with duplicate sources —
  // each duplicated lane must carry its own full copy of the aggregates.
  for (const std::size_t size : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                                 std::size_t{65}, std::size_t{130}}) {
    std::vector<Vertex> sources(size);
    for (std::size_t i = 0; i < size; ++i) {
      sources[i] = static_cast<Vertex>(rng.next_below(g.num_vertices()));
    }
    if (size >= 2) sources[size - 1] = sources[0];
    expect_batch_matches_per_seed(g, sources, "ragged");
  }
  // The empty batch is a no-op, not an error.
  MultiBfs engine(g);
  EXPECT_TRUE(engine.run({}).empty());
  EXPECT_EQ(engine.stats().sweeps, 0U);
}

TEST(MultiBfs, SettleHookStreamsExactDistances) {
  Rng rng(0xB1F5'0003);
  // Disconnected on purpose: unreached (lane, vertex) pairs must never fire
  // the hook, leaving their matrix entries at the sentinel.
  const UGraph g = erdos_renyi(70, 0.04, rng);
  const std::uint32_t n = g.num_vertices();
  const std::vector<Vertex> sources = all_vertices(n);

  std::vector<std::vector<std::uint32_t>> matrix(n);
  for (Vertex u = 0; u < n; ++u) matrix[u].assign(n, kUnreachable);
  MultiBfs engine(g);
  std::array<BfsAggregates, MultiBfs::kLanes> aggs{};
  for (std::size_t first = 0; first < sources.size(); first += MultiBfs::kLanes) {
    const std::size_t count = std::min<std::size_t>(MultiBfs::kLanes, sources.size() - first);
    engine.run_batch(std::span<const Vertex>(sources).subspan(first, count),
                     std::span<BfsAggregates>(aggs.data(), count),
                     [&](std::uint32_t lane, Vertex v, std::uint32_t level) {
                       ASSERT_EQ(matrix[first + lane][v], kUnreachable);  // fires once per pair
                       matrix[first + lane][v] = level;
                     });
  }

  BfsRunner reference(n);
  for (Vertex u = 0; u < n; ++u) {
    reference.run(g, u);
    for (Vertex v = 0; v < n; ++v) {
      ASSERT_EQ(matrix[u][v], reference.dist(v)) << "source " << u << " vertex " << v;
    }
  }
}

TEST(MultiBfs, LanePlanesRestoredAndAllocationsFlat) {
  Rng rng(0xB1F5'0004);
  const UGraph g = erdos_renyi(60, 0.08, rng);
  const std::uint32_t n = g.num_vertices();
  const std::vector<Vertex> sources = all_vertices(n);

  Workspace ws;
  MultiBfs engine(g, &ws);
  const std::vector<BfsAggregates> first = engine.run(sources);

  // The all-zero plane invariant bind_lanes() documents: growth must never
  // destroy live state because there is none between batches.
  for (Vertex v = 0; v < n; ++v) {
    ASSERT_EQ(ws.lane_seen[v], 0U) << "vertex " << v;
    ASSERT_EQ(ws.lane_frontier[v], 0U) << "vertex " << v;
    ASSERT_EQ(ws.lane_next[v], 0U) << "vertex " << v;
  }

  // Steady state: repeated identical batches perform zero further grows and
  // keep the footprint flat, and keep returning identical aggregates.
  const std::uint64_t grows = ws.grows();
  const std::uint64_t footprint = ws.footprint_bytes();
  for (int repeat = 0; repeat < 5; ++repeat) {
    const std::vector<BfsAggregates> again = engine.run(sources);
    for (std::size_t i = 0; i < first.size(); ++i) {
      expect_aggregates_equal(again[i], first[i], "repeat", i);
    }
  }
  EXPECT_EQ(ws.grows(), grows);
  EXPECT_EQ(ws.footprint_bytes(), footprint);
}

TEST(MultiBfs, ParallelDriverMatchesSequentialEngine) {
  Rng rng(0xB1F5'0005);
  const UGraph g = erdos_renyi(150, 0.05, rng);
  const std::vector<Vertex> sources = all_vertices(g.num_vertices());

  MultiBfs engine(g);
  const std::vector<BfsAggregates> sequential = engine.run(sources);

  ThreadPool pool(4);
  MultiBfsStats stats;
  const std::vector<BfsAggregates> parallel =
      multi_source_aggregates(g, sources, &pool, &stats);
  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    expect_aggregates_equal(parallel[i], sequential[i], "parallel", i);
  }
  // The counters are order-independent sums — deterministic at any width.
  EXPECT_EQ(stats.sweeps, engine.stats().sweeps);
  EXPECT_EQ(stats.levels, engine.stats().levels);
  EXPECT_EQ(stats.row_scans, engine.stats().row_scans);
  EXPECT_EQ(stats.settled, engine.stats().settled);

  MultiBfsStats all_stats;
  const std::vector<BfsAggregates> all = all_sources_aggregates(g, &pool, &all_stats);
  ASSERT_EQ(all.size(), sequential.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    expect_aggregates_equal(all[i], sequential[i], "all_sources", i);
  }
  EXPECT_EQ(all_stats.settled, stats.settled);

  EXPECT_TRUE(all_sources_aggregates(UGraph(0)).empty());
}

TEST(MultiBfs, DistanceConsumersMatchPerSeedWitness) {
  Rng rng(0xB1F5'0006);
  std::vector<UGraph> corpus;
  corpus.push_back(path_ugraph(9));
  corpus.push_back(cycle_ugraph(12));
  corpus.push_back(grid_graph(4, 6));
  corpus.push_back(UGraph(1));
  {
    UGraph split(7);  // two components + an isolated vertex
    split.add_edge(0, 1);
    split.add_edge(1, 2);
    split.add_edge(3, 4);
    split.add_edge(4, 5);
    corpus.push_back(std::move(split));
  }
  for (int trial = 0; trial < 12; ++trial) {
    const std::uint32_t n = 2 + static_cast<std::uint32_t>(rng.next_below(70));
    corpus.push_back(erdos_renyi(n, trial % 2 == 0 ? 0.05 : 0.2, rng));
  }

  for (std::size_t index = 0; index < corpus.size(); ++index) {
    const UGraph& g = corpus[index];
    const CsrUGraph csr(g);

    const EccentricityResult batched = eccentricities(g);
    const EccentricityResult per_seed = eccentricities(g, nullptr, /*batched=*/false);
    ASSERT_EQ(batched.connected, per_seed.connected) << "graph " << index;
    ASSERT_EQ(batched.diameter, per_seed.diameter) << "graph " << index;
    ASSERT_EQ(batched.radius, per_seed.radius) << "graph " << index;
    ASSERT_EQ(batched.ecc, per_seed.ecc) << "graph " << index;
    const EccentricityResult csr_batched = eccentricities(csr);
    ASSERT_EQ(csr_batched.ecc, per_seed.ecc) << "graph " << index;

    ASSERT_EQ(diameter(g), diameter(g, nullptr, /*batched=*/false)) << "graph " << index;
    ASSERT_EQ(diameter(csr), diameter(csr, nullptr, /*batched=*/false)) << "graph " << index;

    ASSERT_EQ(apsp(g), apsp(g, nullptr, /*batched=*/false)) << "graph " << index;

    const std::optional<double> avg = average_distance(g);
    const std::optional<double> avg_witness = average_distance(g, nullptr, /*batched=*/false);
    ASSERT_EQ(avg.has_value(), avg_witness.has_value()) << "graph " << index;
    // Both paths divide the same exact integer totals, so the doubles are
    // bit-identical, not merely close.
    if (avg.has_value()) {
      ASSERT_EQ(*avg, *avg_witness) << "graph " << index;
    }
  }
}

TEST(MultiBfs, CostConsumersMatchPerSeedWitness) {
  Rng rng(0xB1F5'0007);
  for (int trial = 0; trial < 12; ++trial) {
    const std::uint32_t n = 2 + static_cast<std::uint32_t>(rng.next_below(40));
    const UGraph g = erdos_renyi(n, trial % 2 == 0 ? 0.06 : 0.25, rng);
    for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
      const std::vector<std::uint64_t> batched = all_costs(g, version);
      const std::vector<std::uint64_t> per_seed =
          all_costs(g, version, nullptr, /*batched=*/false);
      ASSERT_EQ(batched, per_seed) << "trial " << trial << " " << to_string(version);
      // Cross-check one entry against the scalar evaluator.
      const Vertex probe = static_cast<Vertex>(rng.next_below(n));
      ASSERT_EQ(batched[probe], vertex_cost(g, probe, version)) << "trial " << trial;
    }
    ASSERT_EQ(social_cost(g), social_cost(g, nullptr, /*batched=*/false)) << "trial " << trial;
  }
}

/// The regret report must be identical across the batched flag; the prepass
/// counters exist only on the batched path. With the certified exact_bb
/// backend the certificate counts match exactly too.
void expect_audit_matches_per_seed(const Digraph& g, CostVersion version, GraphCore core) {
  SolverBudget budget;
  budget.core = core;
  const NashReport batched = verify_nash_equilibrium(g, version, budget);
  const NashReport per_seed =
      verify_nash_equilibrium(g, version, budget, "exact_bb", nullptr, /*batched=*/false);

  ASSERT_EQ(batched.stable, per_seed.stable) << to_string(version);
  ASSERT_EQ(batched.certified, per_seed.certified) << to_string(version);
  ASSERT_EQ(batched.epsilon, per_seed.epsilon) << to_string(version);
  ASSERT_EQ(batched.players_certified, per_seed.players_certified) << to_string(version);
  if (!per_seed.stable) {
    ASSERT_EQ(batched.deviator, per_seed.deviator) << to_string(version);
    ASSERT_EQ(batched.improving_strategy, per_seed.improving_strategy) << to_string(version);
    ASSERT_EQ(batched.old_cost, per_seed.old_cost) << to_string(version);
    ASSERT_EQ(batched.new_cost, per_seed.new_cost) << to_string(version);
  }

  const std::uint32_t n = g.num_vertices();
  EXPECT_EQ(batched.prepass_sweeps, (n + 63) / 64);
  EXPECT_GE(batched.prepass_settled, n);  // every source settles itself
  EXPECT_GT(batched.prepass_row_scans, 0U);
  EXPECT_EQ(per_seed.prepass_sweeps, 0U);
  EXPECT_EQ(per_seed.prepass_row_scans, 0U);
  EXPECT_EQ(per_seed.prepass_settled, 0U);
}

TEST(MultiBfs, NashAuditBatchedMatchesPerSeedBitForBit) {
  Rng rng(0xB1F5'0008);
  for (int trial = 0; trial < 6; ++trial) {
    const std::uint32_t n = 6 + static_cast<std::uint32_t>(rng.next_below(4));
    const Digraph g = random_profile(random_budgets(n, 2 * n, rng), rng);
    const GraphCore core = trial % 2 == 0 ? GraphCore::kCsr : GraphCore::kVector;
    expect_audit_matches_per_seed(g, CostVersion::Sum, core);
    expect_audit_matches_per_seed(g, CostVersion::Max, core);
  }
  // σ < n−1 keeps the graph disconnected — the prepass must price the
  // cinf component terms exactly like the per-seed evaluators.
  Rng rng2(0xB1F5'0009);
  const Digraph sparse = random_profile(random_budgets(8, 5, rng2), rng2);
  expect_audit_matches_per_seed(sparse, CostVersion::Sum, GraphCore::kCsr);
  expect_audit_matches_per_seed(sparse, CostVersion::Max, GraphCore::kVector);
}

TEST(MultiBfs, NashAuditSkipsTriviallyOptimalPlayers) {
  // Star center: cSUM = n−1 and cMAX = 1, both exactly the trivial lower
  // bound, so the batched prepass certifies it with regret 0 and no solve.
  const Digraph star = star_digraph(9);
  for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
    const NashReport report = verify_nash_equilibrium(star, version);
    EXPECT_TRUE(report.stable) << to_string(version);
    EXPECT_TRUE(report.certified) << to_string(version);
    EXPECT_GE(report.players_skipped, 1U) << to_string(version);
    EXPECT_EQ(report.players_certified, star.num_vertices()) << to_string(version);
    // The skip is sound: the per-seed audit agrees on the verdict.
    const NashReport witness =
        verify_nash_equilibrium(star, version, {}, "exact_bb", nullptr, /*batched=*/false);
    EXPECT_EQ(witness.stable, report.stable);
    EXPECT_EQ(witness.epsilon, report.epsilon);
    EXPECT_EQ(witness.players_certified, report.players_certified);
  }
}

TEST(MultiBfs, SumAggregatesExceedThirtyTwoBits) {
  // Path graph, source at an end: Σ d = n(n−1)/2 ≈ 4.5·10¹⁰ > 2³². Pins the
  // distance-sum accumulator width across every engine in the library; a
  // uint32 anywhere in the chain truncates this closed-form value.
  constexpr std::uint32_t n = 300'000;
  constexpr std::uint64_t expected =
      std::uint64_t{n} * (std::uint64_t{n} - 1) / 2;  // 44'999'850'000
  static_assert(expected > std::uint64_t{1} << 32);
  const UGraph g = path_ugraph(n);

  BfsRunner runner(n);
  runner.run(g, 0);
  EXPECT_EQ(runner.sum_dist(), expected);
  EXPECT_EQ(runner.max_dist(), n - 1);

  Workspace ws;
  EXPECT_EQ(bfs_workspace(g, Vertex{0}, ws).sum_dist, expected);

  MultiBfs engine(g, &ws);
  const Vertex sources[2] = {0, n - 1};
  std::array<BfsAggregates, 2> aggs{};
  engine.run_batch(std::span<const Vertex>(sources), std::span<BfsAggregates>(aggs));
  EXPECT_EQ(aggs[0].sum_dist, expected);
  EXPECT_EQ(aggs[1].sum_dist, expected);
  EXPECT_EQ(engine.stats().settled, 2 * std::uint64_t{n});

  EXPECT_EQ(sum_of_distances(g, 0, cinf(n)), expected);

  const DynamicBfs oracle(g, /*source=*/0);
  EXPECT_EQ(oracle.sum_dist(), expected);
}

using Edge = std::pair<Vertex, Vertex>;

Edge key(Vertex a, Vertex b) { return {std::min(a, b), std::max(a, b)}; }

TEST(FuzzMultiBfs, InsertDeleteWalkMatchesPerSeedAcrossCores) {
  // Random insert/delete walk in the test_fuzz_dynamic_bfs.cpp style: both
  // graph cores mutate in lockstep with a std::set shadow, and after every
  // step a full all-vertex batch is audited against the per-seed witness on
  // both cores, counters included (expect_batch_matches_per_seed). The
  // insert bias first grows a mostly-connected graph, then a shredding
  // phase forces frequent disconnections.
  const std::uint32_t n = 40;
  Rng rng(0xF022'B1F5);
  UGraph g(n);
  CsrUGraph csr(n);
  std::set<Edge> shadow;
  Workspace witness;

  for (int step = 0; step < 400; ++step) {
    const double insert_bias = step < 250 ? 0.7 : 0.25;
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const auto v = static_cast<Vertex>(rng.next_below(n));
    if (u == v) continue;
    if (rng.next_bool(insert_bias) && !shadow.count(key(u, v))) {
      g.add_edge(u, v);
      csr.add_edge(u, v);
      shadow.insert(key(u, v));
    } else if (shadow.count(key(u, v))) {
      g.remove_edge(u, v);
      csr.remove_edge(u, v);
      shadow.erase(key(u, v));
    } else {
      continue;
    }
    ASSERT_EQ(g.num_edges(), shadow.size());
    ASSERT_EQ(csr.num_edges(), shadow.size());

    // Fresh engines each step: the differential is against the CURRENT
    // graph, and the mutated CSR rows must traverse identically to the
    // vector core.
    MultiBfs engine(g);
    CsrMultiBfs csr_engine(csr);
    const std::vector<Vertex> sources = all_vertices(n);
    const std::vector<BfsAggregates> batched = engine.run(sources);
    const std::vector<BfsAggregates> csr_batched = csr_engine.run(sources);
    for (Vertex s = 0; s < n; ++s) {
      const BfsAggregates want = bfs_workspace(g, s, witness);
      ASSERT_EQ(batched[s].reached, want.reached) << "step " << step << " source " << s;
      ASSERT_EQ(batched[s].max_dist, want.max_dist) << "step " << step << " source " << s;
      ASSERT_EQ(batched[s].sum_dist, want.sum_dist) << "step " << step << " source " << s;
    }
    ASSERT_EQ(csr_batched.size(), batched.size());
    for (Vertex s = 0; s < n; ++s) {
      ASSERT_EQ(csr_batched[s].reached, batched[s].reached) << "step " << step;
      ASSERT_EQ(csr_batched[s].max_dist, batched[s].max_dist) << "step " << step;
      ASSERT_EQ(csr_batched[s].sum_dist, batched[s].sum_dist) << "step " << step;
    }
    ASSERT_EQ(csr_engine.stats().levels, engine.stats().levels) << "step " << step;
    ASSERT_EQ(csr_engine.stats().row_scans, engine.stats().row_scans) << "step " << step;
    ASSERT_EQ(csr_engine.stats().settled, engine.stats().settled) << "step " << step;
  }
}

}  // namespace
}  // namespace bbng
