// Unit tests for the best-response dynamics engine: convergence detection,
// schedules, and exactness bookkeeping (Section 8 machinery).
#include "game/dynamics.hpp"

#include <gtest/gtest.h>

#include "game/equilibrium.hpp"
#include "graph/connectivity.hpp"
#include "graph/cycles.hpp"
#include "graph/generators.hpp"

namespace bbng {
namespace {

TEST(Dynamics, UnitBudgetGamesConvergeToNash) {
  Rng rng(401);
  for (int round = 0; round < 6; ++round) {
    const std::vector<std::uint32_t> budgets(10, 1);
    const Digraph initial = random_profile(budgets, rng);
    for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
      DynamicsConfig config;
      config.version = version;
      config.max_rounds = 200;
      config.seed = static_cast<std::uint64_t>(round);
      const DynamicsResult result = run_best_response_dynamics(initial, config);
      ASSERT_TRUE(result.converged) << "round " << round << " " << to_string(version);
      EXPECT_TRUE(result.all_moves_exact);
      EXPECT_TRUE(verify_equilibrium(result.graph, version).stable);
    }
  }
}

TEST(Dynamics, ConvergedStateKeepsBudgets) {
  Rng rng(402);
  const auto budgets = random_budgets(9, 10, rng);
  const Digraph initial = random_profile(budgets, rng);
  DynamicsConfig config;
  config.version = CostVersion::Sum;
  const DynamicsResult result = run_best_response_dynamics(initial, config);
  EXPECT_EQ(result.graph.budgets(), budgets);
}

TEST(Dynamics, AlreadyEquilibriumMakesNoMoves) {
  const Digraph g = star_digraph(6);
  DynamicsConfig config;
  config.version = CostVersion::Max;
  const DynamicsResult result = run_best_response_dynamics(g, config);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.moves, 0U);
  EXPECT_EQ(result.rounds, 1U);
  EXPECT_TRUE(result.graph == g);
}

TEST(Dynamics, ConnectsDisconnectedStartWhenBudgetsAllow) {
  // σ ≥ n−1 ⇒ equilibria are connected (Lemma 3.1); dynamics must leave any
  // disconnected start.
  Rng rng(403);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::uint32_t> budgets(8, 1);
    const Digraph initial = random_profile(budgets, rng);
    for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
      DynamicsConfig config;
      config.version = version;
      config.max_rounds = 300;
      const DynamicsResult result = run_best_response_dynamics(initial, config);
      ASSERT_TRUE(result.converged);
      EXPECT_TRUE(is_connected(result.graph.underlying()));
    }
  }
}

TEST(Dynamics, RandomPermutationScheduleAlsoConverges) {
  Rng rng(404);
  const std::vector<std::uint32_t> budgets(9, 1);
  const Digraph initial = random_profile(budgets, rng);
  DynamicsConfig config;
  config.version = CostVersion::Sum;
  config.schedule = Schedule::RandomPermutation;
  config.seed = 99;
  const DynamicsResult result = run_best_response_dynamics(initial, config);
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(verify_equilibrium(result.graph, CostVersion::Sum).stable);
}

TEST(Dynamics, UniformRandomScheduleNeverClaimsConvergence) {
  const Digraph g = star_digraph(5);
  DynamicsConfig config;
  config.version = CostVersion::Sum;
  config.schedule = Schedule::UniformRandom;
  config.max_rounds = 5;
  const DynamicsResult result = run_best_response_dynamics(g, config);
  EXPECT_FALSE(result.converged);  // by design: random picks cannot certify
  EXPECT_EQ(result.moves, 0U);
}

TEST(Dynamics, DeterministicForFixedSeed) {
  Rng rng(405);
  const auto budgets = random_budgets(8, 9, rng);
  const Digraph initial = random_profile(budgets, rng);
  DynamicsConfig config;
  config.version = CostVersion::Max;
  config.schedule = Schedule::RandomPermutation;
  config.seed = 7;
  const DynamicsResult a = run_best_response_dynamics(initial, config);
  const DynamicsResult b = run_best_response_dynamics(initial, config);
  EXPECT_TRUE(a.graph == b.graph);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Dynamics, TreeInstanceConvergesToTreeEquilibrium) {
  Rng rng(406);
  for (int round = 0; round < 5; ++round) {
    const Digraph initial = random_tree_digraph(10, rng);
    DynamicsConfig config;
    config.version = CostVersion::Sum;
    config.max_rounds = 300;
    const DynamicsResult result = run_best_response_dynamics(initial, config);
    ASSERT_TRUE(result.converged);
    // σ = n−1 and connected ⇒ the equilibrium is a tree.
    EXPECT_EQ(result.graph.num_arcs(), 9U);
    EXPECT_TRUE(is_connected(result.graph.underlying()));
    EXPECT_EQ(result.graph.underlying().num_edges(), 9U);
  }
}

TEST(Dynamics, MovesCountedAndEvaluationsPositive) {
  const Digraph initial = path_digraph(8);
  DynamicsConfig config;
  config.version = CostVersion::Max;
  const DynamicsResult result = run_best_response_dynamics(initial, config);
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.moves, 0U);
  EXPECT_GT(result.evaluations, 0U);
}

TEST(Dynamics, RespectsMaxRounds) {
  Rng rng(407);
  const auto budgets = random_budgets(12, 20, rng);
  const Digraph initial = random_profile(budgets, rng);
  DynamicsConfig config;
  config.version = CostVersion::Sum;
  config.max_rounds = 1;
  const DynamicsResult result = run_best_response_dynamics(initial, config);
  EXPECT_LE(result.rounds, 1U);
}

}  // namespace
}  // namespace bbng
