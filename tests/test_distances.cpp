// Unit tests for distance aggregates: eccentricities, diameter, radius,
// and per-vertex distance sums.
#include "graph/distances.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace bbng {
namespace {

TEST(Distances, PathEccentricities) {
  const UGraph g = path_ugraph(5);
  const auto result = eccentricities(g);
  ASSERT_TRUE(result.connected);
  EXPECT_EQ(result.diameter, 4U);
  EXPECT_EQ(result.radius, 2U);
  EXPECT_EQ(result.ecc[0], 4U);
  EXPECT_EQ(result.ecc[2], 2U);
}

TEST(Distances, CycleDiameter) {
  EXPECT_EQ(diameter(cycle_ugraph(8)), 4U);
  EXPECT_EQ(diameter(cycle_ugraph(9)), 4U);
}

TEST(Distances, CompleteGraphDiameterOne) {
  EXPECT_EQ(diameter(complete_ugraph(6)), 1U);
}

TEST(Distances, SingleVertex) {
  const auto result = eccentricities(UGraph(1));
  EXPECT_TRUE(result.connected);
  EXPECT_EQ(result.diameter, 0U);
}

TEST(Distances, DisconnectedDiameterIsSentinel) {
  UGraph g(4);
  g.add_edge(0, 1);
  EXPECT_EQ(diameter(g), kUnreachable);
  const auto result = eccentricities(g);
  EXPECT_FALSE(result.connected);
}

TEST(Distances, GridDiameter) {
  EXPECT_EQ(diameter(grid_graph(3, 5)), 6U);
}

TEST(Distances, EccentricityOfSingleVertex) {
  const UGraph g = path_ugraph(7);
  EXPECT_EQ(eccentricity(g, 3), 3U);
  EXPECT_EQ(eccentricity(g, 0), 6U);
}

TEST(Distances, SumOfDistancesConnected) {
  const UGraph g = path_ugraph(4);
  EXPECT_EQ(sum_of_distances(g, 0, 16), 1U + 2 + 3);
  EXPECT_EQ(sum_of_distances(g, 1, 16), 1U + 1 + 2);
}

TEST(Distances, SumOfDistancesCountsCinf) {
  UGraph g(4);
  g.add_edge(0, 1);
  EXPECT_EQ(sum_of_distances(g, 0, 16), 1U + 16 + 16);
}

TEST(Distances, ApspMatchesPairwiseBfs) {
  Rng rng(5);
  const UGraph g = connected_erdos_renyi(20, 0.15, rng);
  const auto matrix = apsp(g);
  for (Vertex u = 0; u < 20; ++u) {
    const auto row = bfs_distances(g, u);
    EXPECT_EQ(matrix[u], row);
  }
}

TEST(Distances, ApspSymmetry) {
  Rng rng(6);
  const UGraph g = connected_erdos_renyi(15, 0.2, rng);
  const auto matrix = apsp(g);
  for (Vertex u = 0; u < 15; ++u) {
    for (Vertex v = 0; v < 15; ++v) EXPECT_EQ(matrix[u][v], matrix[v][u]);
  }
}

TEST(Distances, AverageDistancePath) {
  // Path on 3 vertices: distances 1,1,2 in each direction → mean 4/3.
  const auto avg = average_distance(path_ugraph(3));
  ASSERT_TRUE(avg.has_value());
  EXPECT_NEAR(*avg, 4.0 / 3.0, 1e-12);
}

TEST(Distances, AverageDistanceDisconnectedIsNull) {
  UGraph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(average_distance(g).has_value());
}

TEST(Distances, DiameterLowerBoundExactOnTrees) {
  Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    const Digraph t = random_tree_digraph(40, rng);
    const UGraph g = t.underlying();
    const std::uint32_t exact = diameter(g);
    Rng sweep_rng(round);
    EXPECT_EQ(diameter_lower_bound(g, 2, sweep_rng), exact);
  }
}

TEST(Distances, DiameterLowerBoundNeverExceedsDiameter) {
  Rng rng(9);
  const UGraph g = connected_erdos_renyi(60, 0.05, rng);
  const std::uint32_t exact = diameter(g);
  Rng sweep_rng(1);
  EXPECT_LE(diameter_lower_bound(g, 4, sweep_rng), exact);
}

TEST(Distances, ParallelAndSerialAgree) {
  Rng rng(10);
  const UGraph g = connected_erdos_renyi(64, 0.08, rng);
  ThreadPool serial(1);
  ThreadPool wide(4);
  const auto a = eccentricities(g, &serial);
  const auto b = eccentricities(g, &wide);
  EXPECT_EQ(a.ecc, b.ecc);
  EXPECT_EQ(a.diameter, b.diameter);
  EXPECT_EQ(a.radius, b.radius);
}

}  // namespace
}  // namespace bbng
