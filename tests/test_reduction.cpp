// Theorem 2.1: the best response of the added player IS an optimal k-center
// (MAX) / k-median (SUM) solution.
#include "facility/reduction.hpp"

#include <gtest/gtest.h>

#include "facility/kmedian.hpp"
#include "graph/generators.hpp"

namespace bbng {
namespace {

TEST(Reduction, InstanceShape) {
  const UGraph h = cycle_ugraph(6);
  const ReductionInstance instance = make_reduction_instance(h, 2);
  EXPECT_EQ(instance.realization.num_vertices(), 7U);
  EXPECT_EQ(instance.new_player, 6U);
  EXPECT_EQ(instance.realization.out_degree(6), 2U);
  // The original graph's underlying structure is preserved among 0..5.
  const UGraph u = instance.realization.underlying();
  for (Vertex a = 0; a < 6; ++a) {
    for (Vertex b = a + 1; b < 6; ++b) EXPECT_EQ(u.has_edge(a, b), h.has_edge(a, b));
  }
}

TEST(Reduction, CostTranslation) {
  const UGraph h = path_ugraph(5);
  const ReductionInstance instance = make_reduction_instance(h, 1);
  EXPECT_EQ(facility_value_from_cost(instance, CostVersion::Max, 3), 2U);
  EXPECT_EQ(facility_value_from_cost(instance, CostVersion::Sum, 12), 7U);
  EXPECT_THROW((void)facility_value_from_cost(instance, CostVersion::Sum, 3),
               std::invalid_argument);
}

TEST(Reduction, KCenterViaBestResponseOnPath) {
  const UGraph h = path_ugraph(9);
  const FacilitySolution via_br = solve_facility_via_best_response(h, 1, CostVersion::Max);
  const FacilitySolution direct = exact_kcenter(h, 1);
  EXPECT_EQ(via_br.objective, direct.objective);
  EXPECT_EQ(via_br.centers, direct.centers);
}

TEST(Reduction, KMedianViaBestResponseOnPath) {
  const UGraph h = path_ugraph(9);
  const FacilitySolution via_br = solve_facility_via_best_response(h, 2, CostVersion::Sum);
  const FacilitySolution direct = exact_kmedian(h, 2);
  EXPECT_EQ(via_br.objective, direct.objective);
}

// Parameterized sweep: on random connected graphs, the equivalence holds for
// both versions and several k.
class ReductionSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReductionSweep, BestResponseSolvesFacilityExactly) {
  const auto [seed, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 131 + 7);
  const UGraph h = connected_erdos_renyi(12, 0.18, rng);

  const FacilitySolution center_br =
      solve_facility_via_best_response(h, static_cast<std::uint32_t>(k), CostVersion::Max);
  const FacilitySolution center_direct = exact_kcenter(h, static_cast<std::uint32_t>(k));
  EXPECT_EQ(center_br.objective, center_direct.objective);

  const FacilitySolution median_br =
      solve_facility_via_best_response(h, static_cast<std::uint32_t>(k), CostVersion::Sum);
  const FacilitySolution median_direct = exact_kmedian(h, static_cast<std::uint32_t>(k));
  EXPECT_EQ(median_br.objective, median_direct.objective);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReductionSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(1, 2, 3)));

TEST(Reduction, CentersOfBestResponseAreOptimalCenters) {
  // Stronger check: apply the returned centers to the direct objective.
  Rng rng(903);
  const UGraph h = connected_erdos_renyi(11, 0.2, rng);
  for (const std::uint32_t k : {1U, 2U}) {
    const FacilitySolution via_br = solve_facility_via_best_response(h, k, CostVersion::Max);
    EXPECT_EQ(kcenter_objective(h, via_br.centers), via_br.objective);
  }
}

}  // namespace
}  // namespace bbng
