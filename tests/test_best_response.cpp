// Unit tests for the best-response solver ladder (exact / greedy / swap) of
// best_response.hpp, including agreement of heuristics with exact search.
#include "game/best_response.hpp"

#include <gtest/gtest.h>

#include "game/cost.hpp"
#include "game/strategy_eval.hpp"
#include "graph/generators.hpp"
#include "util/combinatorics.hpp"

namespace bbng {
namespace {

/// Reference exact best response: enumerate every candidate via the slow
/// rebuild path.
std::pair<std::vector<Vertex>, std::uint64_t> brute_force(const Digraph& g, Vertex u,
                                                          CostVersion version) {
  const std::uint32_t n = g.num_vertices();
  const std::uint32_t b = g.out_degree(u);
  std::vector<Vertex> best;
  std::uint64_t best_cost = ~0ULL;
  for (CombinationIterator it(n - 1, b); it.valid(); it.advance()) {
    std::vector<Vertex> heads;
    for (const auto idx : it.current()) heads.push_back(idx >= u ? idx + 1 : idx);
    Digraph copy = g;
    copy.set_strategy(u, heads);
    const std::uint64_t cost = vertex_cost(copy, u, version);
    if (cost < best_cost) {
      best_cost = cost;
      best = heads;
    }
  }
  return {best, best_cost};
}

TEST(ExactBestResponse, MatchesBruteForceOnRandomGames) {
  Rng rng(201);
  for (int round = 0; round < 10; ++round) {
    const auto budgets = random_budgets(9, 11, rng);
    const Digraph g = random_profile(budgets, rng);
    for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
      const BestResponseSolver solver(version);
      for (Vertex u = 0; u < 9; ++u) {
        const auto [ref_strategy, ref_cost] = brute_force(g, u, version);
        const BestResponse br = solver.exact(g, u);
        EXPECT_EQ(br.cost, ref_cost) << "round " << round << " u " << u;
        EXPECT_TRUE(br.exact);
        EXPECT_EQ(br.evaluated, binomial(8, g.out_degree(u)));
      }
    }
  }
}

TEST(ExactBestResponse, CostNeverAboveCurrent) {
  Rng rng(202);
  for (int round = 0; round < 10; ++round) {
    const auto budgets = random_budgets(10, 12, rng);
    const Digraph g = random_profile(budgets, rng);
    const BestResponseSolver solver(CostVersion::Sum);
    for (Vertex u = 0; u < 10; ++u) {
      const BestResponse br = solver.exact(g, u);
      EXPECT_LE(br.cost, br.current_cost);
    }
  }
}

TEST(ExactBestResponse, PathEndpointRelinksToCenter) {
  // Path 0→1→2→3→4: player 0 owns one arc. Linking to vertex 2 leaves
  // vertex 1 hanging one step away and 4 three steps away — local diameter
  // 3, which is optimal (linking to 3 also gives 3; ties break to 2).
  const Digraph g = path_digraph(5);
  const BestResponseSolver solver(CostVersion::Max);
  const BestResponse br = solver.exact(g, 0);
  ASSERT_EQ(br.strategy.size(), 1U);
  EXPECT_EQ(br.strategy[0], 2U);
  EXPECT_EQ(br.cost, 3U);
  EXPECT_TRUE(br.improves());  // current local diameter is 4
}

TEST(ExactBestResponse, ThrowsOverLimit) {
  Rng rng(203);
  const std::vector<std::uint32_t> budgets(20, 8);
  const Digraph g = random_profile(budgets, rng);
  const BestResponseSolver solver(CostVersion::Sum, /*exact_limit=*/100);
  EXPECT_FALSE(solver.exact_feasible(g, 0));
  EXPECT_THROW((void)solver.exact(g, 0), std::invalid_argument);
}

TEST(ExactBestResponse, ZeroBudgetPlayerTrivial) {
  Digraph g(4);
  g.add_arc(1, 0);
  g.add_arc(2, 1);
  g.add_arc(3, 1);
  const BestResponseSolver solver(CostVersion::Sum);
  const BestResponse br = solver.exact(g, 0);
  EXPECT_TRUE(br.strategy.empty());
  EXPECT_EQ(br.cost, br.current_cost);
  EXPECT_EQ(br.evaluated, 1U);
}

TEST(ExactBestResponse, DeterministicTieBreaking) {
  // A symmetric cycle: many strategies tie; the solver must break ties
  // lexicographically and reproducibly.
  const Digraph g = cycle_digraph(7);
  const BestResponseSolver solver(CostVersion::Sum);
  const BestResponse a = solver.exact(g, 3);
  const BestResponse b = solver.exact(g, 3);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.cost, b.cost);
}

TEST(ExactBestResponse, ParallelMatchesSerial) {
  Rng rng(204);
  const auto budgets = random_budgets(12, 18, rng);
  const Digraph g = random_profile(budgets, rng);
  ThreadPool serial(1), wide(4);
  const BestResponseSolver solver(CostVersion::Max);
  for (Vertex u = 0; u < 12; ++u) {
    const BestResponse a = solver.exact(g, u, &serial);
    const BestResponse b = solver.exact(g, u, &wide);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.strategy, b.strategy);  // deterministic merge
  }
}

TEST(GreedyBestResponse, NeverBeatsExactButIsFeasible) {
  Rng rng(205);
  for (int round = 0; round < 8; ++round) {
    const auto budgets = random_budgets(10, 14, rng);
    const Digraph g = random_profile(budgets, rng);
    for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
      const BestResponseSolver solver(version);
      for (Vertex u = 0; u < 10; ++u) {
        const BestResponse exact = solver.exact(g, u);
        const BestResponse greedy = solver.greedy(g, u);
        EXPECT_GE(greedy.cost, exact.cost);
        EXPECT_EQ(greedy.strategy.size(), g.out_degree(u));
      }
    }
  }
}

TEST(GreedyBestResponse, SingleArcIsExact) {
  // With budget 1 greedy enumerates all candidates, so it matches exact.
  Rng rng(206);
  const std::vector<std::uint32_t> budgets(11, 1);
  const Digraph g = random_profile(budgets, rng);
  for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
    const BestResponseSolver solver(version);
    for (Vertex u = 0; u < 11; ++u) {
      EXPECT_EQ(solver.greedy(g, u).cost, solver.exact(g, u).cost);
    }
  }
}

TEST(SwapImprove, NeverWorseThanStart) {
  Rng rng(207);
  const auto budgets = random_budgets(10, 15, rng);
  const Digraph g = random_profile(budgets, rng);
  const BestResponseSolver solver(CostVersion::Sum);
  for (Vertex u = 0; u < 10; ++u) {
    const StrategyEvaluator eval(g, u, CostVersion::Sum);
    const BestResponse br = solver.swap_improve(g, u);
    EXPECT_LE(br.cost, eval.current_cost());
  }
}

TEST(SwapImprove, ReachesLocalOptimum) {
  Rng rng(208);
  const auto budgets = random_budgets(9, 10, rng);
  const Digraph g = random_profile(budgets, rng);
  const BestResponseSolver solver(CostVersion::Max);
  for (Vertex u = 0; u < 9; ++u) {
    const BestResponse br = solver.swap_improve(g, u);
    // Applying the returned strategy and swapping again gains nothing.
    Digraph moved = g;
    moved.set_strategy(u, br.strategy);
    const BestResponse again = solver.swap_improve(moved, u);
    EXPECT_EQ(again.cost, br.cost);
  }
}

TEST(Solve, UsesExactWhenFeasibleElseHeuristic) {
  Rng rng(209);
  const auto budgets = random_budgets(10, 12, rng);
  const Digraph g = random_profile(budgets, rng);
  const BestResponseSolver tight(CostVersion::Sum, /*exact_limit=*/2);
  const BestResponseSolver loose(CostVersion::Sum);
  for (Vertex u = 0; u < 10; ++u) {
    const BestResponse heur = tight.solve(g, u);
    const BestResponse exact = loose.solve(g, u);
    EXPECT_TRUE(exact.exact || g.out_degree(u) == 0 || !loose.exact_feasible(g, u));
    EXPECT_GE(heur.cost, exact.cost);
    EXPECT_LE(heur.cost, heur.current_cost + 0);  // heuristic may equal current
  }
}

TEST(CandidateCount, MatchesBinomial) {
  Digraph g(6);
  g.add_arc(0, 1);
  g.add_arc(0, 2);
  g.add_arc(3, 0);
  EXPECT_EQ(BestResponseSolver::candidate_count(g, 0), binomial(5, 2));
  EXPECT_EQ(BestResponseSolver::candidate_count(g, 3), 5U);
  EXPECT_EQ(BestResponseSolver::candidate_count(g, 5), 1U);
}

}  // namespace
}  // namespace bbng
