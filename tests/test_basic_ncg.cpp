// Baseline: the basic network creation game (Alon et al., SPAA 2010) —
// swap moves, no ownership. Key contrast reproduced from Section 1.1: MAX
// tree swap-equilibria of the basic game have diameter ≤ 3, while the
// bounded-budget game has tree equilibria of diameter Θ(n) (the spider).
#include "baselines/basic_ncg.hpp"

#include <gtest/gtest.h>

#include "constructions/spider.hpp"
#include "graph/distances.hpp"
#include "graph/generators.hpp"
#include "graph/tree.hpp"

namespace bbng {
namespace {

TEST(BasicCost, MatchesDefinitions) {
  const UGraph g = path_ugraph(4);
  EXPECT_EQ(basic_cost(g, 0, CostVersion::Sum), 1U + 2 + 3);
  EXPECT_EQ(basic_cost(g, 0, CostVersion::Max), 3U);
  EXPECT_EQ(basic_cost(g, 1, CostVersion::Max), 2U);
}

TEST(BasicSwapSearch, FindsTheObviousMove) {
  // Path endpoints want to re-attach toward the middle in the MAX version.
  const UGraph g = path_ugraph(6);
  const auto swap = find_improving_basic_swap(g, 0, CostVersion::Max);
  ASSERT_TRUE(swap.has_value());
  EXPECT_EQ(swap->drop, 1U);
  UGraph moved = g;
  moved.remove_edge(0, swap->drop);
  moved.add_edge(0, swap->add);
  EXPECT_LT(basic_cost(moved, 0, CostVersion::Max), basic_cost(g, 0, CostVersion::Max));
}

TEST(BasicSwapEquilibrium, StarIsStable) {
  UGraph star(7);
  for (Vertex v = 1; v < 7; ++v) star.add_edge(0, v);
  EXPECT_TRUE(is_basic_swap_equilibrium(star, CostVersion::Sum));
  EXPECT_TRUE(is_basic_swap_equilibrium(star, CostVersion::Max));
}

TEST(BasicSwapEquilibrium, LongPathIsNot) {
  const UGraph g = path_ugraph(8);
  EXPECT_FALSE(is_basic_swap_equilibrium(g, CostVersion::Sum));
  EXPECT_FALSE(is_basic_swap_equilibrium(g, CostVersion::Max));
}

TEST(BasicSwapDynamics, ConvergesToSwapEquilibrium) {
  Rng rng(81);
  for (int round = 0; round < 4; ++round) {
    const UGraph initial = random_tree_digraph(12, rng).underlying();
    for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
      const BasicDynamicsResult result = run_basic_swap_dynamics(initial, version, 500);
      ASSERT_TRUE(result.converged);
      EXPECT_TRUE(is_basic_swap_equilibrium(result.graph, version));
      // Swaps preserve the edge count.
      EXPECT_EQ(result.graph.num_edges(), initial.num_edges());
    }
  }
}

TEST(BasicNcgContrast, MaxTreeSwapEquilibriaHaveDiameterAtMost3) {
  // The paper's Section 1.1 contrast, tree side of the basic game: run swap
  // dynamics from random trees; every MAX swap-equilibrium tree found has
  // diameter ≤ 3.
  Rng rng(82);
  for (int round = 0; round < 8; ++round) {
    const UGraph initial = random_tree_digraph(14, rng).underlying();
    const BasicDynamicsResult result =
        run_basic_swap_dynamics(initial, CostVersion::Max, 500);
    if (!result.converged) continue;
    if (!is_tree(result.graph)) continue;  // swaps keep m = n−1 but check anyway
    EXPECT_LE(tree_diameter(result.graph), 3U) << "round " << round;
  }
}

TEST(BasicNcgContrast, SpiderIsNotBasicSwapStableButIsBoundedBudgetStable) {
  // The same spider tree: a Θ(n)-diameter equilibrium under ownership
  // (Theorem 3.2), NOT an equilibrium when any endpoint may swap any
  // incident edge (basic game) — ownership is what creates the gap.
  const Digraph spider = spider_digraph(6);
  const UGraph tree = spider.underlying();
  EXPECT_FALSE(is_basic_swap_equilibrium(tree, CostVersion::Max));
}

}  // namespace
}  // namespace bbng
