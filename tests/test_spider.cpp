// Theorem 3.2 / Figure 2: the spider is a MAX-version Tree-BG equilibrium
// with diameter 2k = Θ(n).
#include "constructions/spider.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "game/equilibrium.hpp"
#include "graph/distances.hpp"
#include "graph/tree.hpp"

namespace bbng {
namespace {

TEST(Spider, ShapeAndBudgets) {
  const std::uint32_t k = 4;
  const Digraph g = spider_digraph(k);
  const SpiderLayout layout = spider_layout(k);
  EXPECT_EQ(g.num_vertices(), 13U);
  EXPECT_EQ(g.num_arcs(), 12U);  // Tree-BG: σ = n−1
  EXPECT_TRUE(is_tree(g.underlying()));
  // Leg heads have budget 2; inner leg vertices 1; hub and tips 0.
  for (std::uint32_t leg = 0; leg < 3; ++leg) {
    EXPECT_EQ(g.out_degree(layout.leg_vertex(leg, 1)), 2U);
    for (std::uint32_t pos = 2; pos < k; ++pos) {
      EXPECT_EQ(g.out_degree(layout.leg_vertex(leg, pos)), 1U);
    }
    EXPECT_EQ(g.out_degree(layout.leg_vertex(leg, k)), 0U);
  }
  EXPECT_EQ(g.out_degree(layout.hub), 0U);
}

TEST(Spider, DiameterIsTwoK) {
  for (const std::uint32_t k : {1U, 2U, 5U, 10U, 25U}) {
    const Digraph g = spider_digraph(k);
    EXPECT_EQ(tree_diameter(g.underlying()), 2 * k) << "k=" << k;
  }
}

TEST(Spider, IsMaxEquilibriumExactly) {
  // Exact Nash verification for several sizes (Theorem 3.2).
  for (const std::uint32_t k : {1U, 2U, 3U, 4U, 6U}) {
    const Digraph g = spider_digraph(k);
    const auto report = verify_equilibrium(g, CostVersion::Max);
    EXPECT_TRUE(report.stable) << "k=" << k << ": player " << report.deviator << " improves "
                               << report.old_cost << " → " << report.new_cost;
  }
}

TEST(Spider, IsNotSumEquilibriumForLargeK) {
  // In the SUM version tree equilibria have diameter O(log n), so the long
  // spider cannot be a SUM equilibrium once k is large enough.
  const Digraph g = spider_digraph(8);
  EXPECT_FALSE(verify_equilibrium(g, CostVersion::Sum).stable);
}

TEST(Spider, MaxCostsMatchTheProof) {
  // The hub's local diameter is k; a leg tip's is 2k.
  const std::uint32_t k = 6;
  const Digraph g = spider_digraph(k);
  const SpiderLayout layout = spider_layout(k);
  const UGraph u = g.underlying();
  EXPECT_EQ(eccentricity(u, layout.hub), k);
  EXPECT_EQ(eccentricity(u, layout.leg_vertex(0, k)), 2 * k);
  EXPECT_EQ(eccentricity(u, layout.leg_vertex(1, 1)), k + 1);
}

TEST(Spider, PoaScalesLinearlyInN) {
  // diam = 2k = 2(n−1)/3 while OPT is O(1): the Θ(n) row of Table 1.
  const std::uint32_t k = 30;
  const Digraph g = spider_digraph(k);
  const std::uint32_t n = g.num_vertices();
  EXPECT_EQ(tree_diameter(g.underlying()), 2 * (n - 1) / 3);
}

}  // namespace
}  // namespace bbng
