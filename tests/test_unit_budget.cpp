// Section 4: structure of (1,…,1)-BG equilibria — Theorems 4.1 and 4.2.
#include "constructions/unit_budget.hpp"

#include <gtest/gtest.h>

#include "game/dynamics.hpp"
#include "game/equilibrium.hpp"
#include "graph/cycles.hpp"
#include "graph/distances.hpp"
#include "graph/generators.hpp"

namespace bbng {
namespace {

TEST(CycleWithLeaves, ShapeAndBudgets) {
  const Digraph g = cycle_with_leaves(3, {2, 0, 1});
  EXPECT_EQ(g.num_vertices(), 6U);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.out_degree(v), 1U);
  const auto profile = analyze_unicyclic(g);
  EXPECT_TRUE(profile.connected);
  EXPECT_EQ(profile.cycle_length, 3U);
  EXPECT_EQ(profile.max_dist_to_cycle, 1U);
}

TEST(CycleWithLeaves, BraceCycle) {
  const Digraph g = cycle_with_uniform_leaves(2, 1);
  EXPECT_EQ(g.brace_count(), 1U);
  const auto profile = analyze_unicyclic(g);
  EXPECT_EQ(profile.cycle_length, 2U);
}

TEST(UnitBudgetBounds, PaperConstants) {
  EXPECT_EQ(unit_budget_bounds(false).max_cycle_length, 5U);
  EXPECT_EQ(unit_budget_bounds(false).diameter_bound, 5U);
  EXPECT_EQ(unit_budget_bounds(true).max_cycle_length, 7U);
  EXPECT_EQ(unit_budget_bounds(true).diameter_bound, 8U);
}

// Property sweep (Theorems 4.1 / 4.2): run BR dynamics on random unit-budget
// profiles; every reached equilibrium must satisfy the structure theorems.
class UnitBudgetEquilibria : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(UnitBudgetEquilibria, StructureTheoremsHold) {
  const auto [n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 977 + 13);
  const std::vector<std::uint32_t> budgets(static_cast<std::size_t>(n), 1);
  const Digraph initial = random_profile(budgets, rng);
  for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
    DynamicsConfig config;
    config.version = version;
    config.max_rounds = 400;
    config.seed = static_cast<std::uint64_t>(seed);
    const DynamicsResult result = run_best_response_dynamics(initial, config);
    if (!result.converged) continue;  // cycling is allowed; theorems speak of equilibria
    ASSERT_TRUE(verify_equilibrium(result.graph, version).stable);

    const auto profile = analyze_unicyclic(result.graph);
    const auto bounds = unit_budget_bounds(version == CostVersion::Max);
    EXPECT_TRUE(profile.connected) << to_string(version);
    EXPECT_TRUE(profile.unicyclic);
    EXPECT_LE(profile.cycle_length, bounds.max_cycle_length) << to_string(version);
    EXPECT_LE(profile.max_dist_to_cycle, bounds.max_dist_to_cycle) << to_string(version);
    EXPECT_LT(diameter(result.graph.underlying()), bounds.diameter_bound)
        << to_string(version);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnitBudgetEquilibria,
                         ::testing::Combine(::testing::Values(6, 9, 12, 16, 20),
                                            ::testing::Values(1, 2, 3)));

TEST(UnitBudget, EquilibriaHaveNoBraceBeyondTwoPlayers) {
  // Theorem 4.1 (SUM): equilibria with n > 2 contain no brace.
  Rng rng(701);
  for (int round = 0; round < 6; ++round) {
    const std::vector<std::uint32_t> budgets(11, 1);
    const Digraph initial = random_profile(budgets, rng);
    DynamicsConfig config;
    config.version = CostVersion::Sum;
    config.max_rounds = 400;
    config.seed = static_cast<std::uint64_t>(round);
    const DynamicsResult result = run_best_response_dynamics(initial, config);
    if (!result.converged) continue;
    EXPECT_EQ(result.graph.brace_count(), 0U);
  }
}

TEST(UnitBudget, TwoPlayerGameIsBrace) {
  const std::vector<std::uint32_t> budgets(2, 1);
  Digraph g(2);
  g.add_arc(0, 1);
  g.add_arc(1, 0);
  for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
    EXPECT_TRUE(verify_equilibrium(g, version).stable);
  }
}

TEST(UnitBudget, ShortPureCyclesAreSumEquilibria) {
  // Theorem 4.1 allows cycles up to length 5; the pure directed cycles
  // C3, C4, C5 are themselves equilibria.
  for (const std::uint32_t len : {3U, 4U, 5U}) {
    EXPECT_TRUE(verify_equilibrium(cycle_digraph(len), CostVersion::Sum).stable)
        << "C" << len;
  }
}

TEST(UnitBudget, LeavesClusterInEquilibria) {
  // A triangle with all leaves on ONE cycle vertex is a SUM equilibrium,
  // whereas spreading the same leaves evenly is not: a leaf prefers the
  // vertex where the other leaves already sit.
  EXPECT_TRUE(verify_equilibrium(cycle_with_leaves(3, {3, 0, 0}), CostVersion::Sum).stable);
  EXPECT_FALSE(verify_equilibrium(cycle_with_leaves(3, {1, 1, 1}), CostVersion::Sum).stable);
}

TEST(UnitBudget, LongCycleIsNotEquilibrium) {
  // A pure directed cycle longer than the Theorem 4.1/4.2 bounds cannot be
  // stable.
  const Digraph g = cycle_digraph(12);
  EXPECT_FALSE(verify_equilibrium(g, CostVersion::Sum).stable);
  EXPECT_FALSE(verify_equilibrium(g, CostVersion::Max).stable);
}

}  // namespace
}  // namespace bbng
