// Unit tests for exhaustive small-game enumeration over all realizations.
#include "game/enumerate.hpp"

#include <gtest/gtest.h>

#include <set>

#include "game/cost.hpp"
#include "game/equilibrium.hpp"
#include "graph/generators.hpp"
#include "util/combinatorics.hpp"

namespace bbng {
namespace {

TEST(ProfileSpace, ProductOfBinomials) {
  EXPECT_EQ(profile_space_size(BudgetGame({1, 1, 1})), 8U);          // 2^3
  EXPECT_EQ(profile_space_size(BudgetGame({2, 0, 0})), 1U);          // C(2,2)
  EXPECT_EQ(profile_space_size(BudgetGame({1, 1, 1, 1})), 81U);      // 3^4
  EXPECT_EQ(profile_space_size(BudgetGame({2, 1, 0, 0})), 9U);       // C(3,2)*3
}

TEST(ProfileSpace, Clamps) {
  const BudgetGame big(std::vector<std::uint32_t>(16, 7));
  EXPECT_EQ(profile_space_size(big, 1000), 1000U);
}

TEST(ForEachRealization, VisitsExactlyTheProfileSpace) {
  const BudgetGame game({1, 1, 1, 1});
  std::uint64_t count = 0;
  const std::uint64_t visited = for_each_realization(game, [&](const Digraph& g) {
    ++count;
    EXPECT_TRUE(game.is_realization(g));
    return true;
  });
  EXPECT_EQ(visited, 81U);
  EXPECT_EQ(count, 81U);
}

TEST(ForEachRealization, AllProfilesDistinct) {
  const BudgetGame game({1, 2, 1});
  std::set<std::uint64_t> hashes;
  for_each_realization(game, [&](const Digraph& g) {
    EXPECT_TRUE(hashes.insert(g.hash()).second) << "duplicate profile";
    return true;
  });
  EXPECT_EQ(hashes.size(), 2U * 1 * 2);  // C(2,1)*C(2,2)*C(2,1)
}

TEST(ForEachRealization, EarlyStop) {
  const BudgetGame game({1, 1, 1, 1});
  std::uint64_t count = 0;
  const std::uint64_t visited = for_each_realization(game, [&](const Digraph&) {
    return ++count < 10;
  });
  EXPECT_EQ(visited, 10U);
}

TEST(ForEachRealization, OverLimitThrows) {
  const BudgetGame game(std::vector<std::uint32_t>(12, 5));
  EXPECT_THROW(
      (void)for_each_realization(game, [](const Digraph&) { return true; }, 1000),
      std::invalid_argument);
}

TEST(ExhaustiveAnalysis, TwoPlayerGame) {
  // Budgets (1,1): the unique realization shape is the brace — 1 profile,
  // it is an equilibrium, diameter 1.
  const auto analysis = exhaustive_analysis(BudgetGame({1, 1}), CostVersion::Sum);
  EXPECT_EQ(analysis.profiles, 1U);
  EXPECT_EQ(analysis.equilibria, 1U);
  EXPECT_EQ(analysis.opt_diameter, 1U);
  EXPECT_DOUBLE_EQ(analysis.price_of_anarchy, 1.0);
}

TEST(ExhaustiveAnalysis, EquilibriaAgreeWithVerifier) {
  // Cross-validate the enumeration's equilibrium set against
  // verify_equilibrium on every profile of a small game.
  const BudgetGame game({1, 1, 1, 0});
  for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
    std::uint64_t equilibria_by_verifier = 0;
    for_each_realization(game, [&](const Digraph& g) {
      equilibria_by_verifier += verify_equilibrium(g, version).stable ? 1 : 0;
      return true;
    });
    const auto analysis = exhaustive_analysis(game, version);
    EXPECT_EQ(analysis.equilibria, equilibria_by_verifier) << to_string(version);
  }
}

TEST(ExhaustiveAnalysis, UnitBudgetPoAIsConstant) {
  // Theorems 4.1/4.2 at ground truth: exact PoA of tiny (1,…,1) games.
  for (const std::uint32_t n : {4U, 5U}) {
    const BudgetGame game(std::vector<std::uint32_t>(n, 1));
    for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
      const auto analysis = exhaustive_analysis(game, version);
      EXPECT_GT(analysis.equilibria, 0U);
      EXPECT_LT(analysis.worst_equilibrium_diameter,
                version == CostVersion::Sum ? 5U : 8U);
      EXPECT_LE(analysis.price_of_anarchy, 4.0) << "n=" << n << " " << to_string(version);
    }
  }
}

TEST(ExhaustiveAnalysis, WorstWitnessIsAnEquilibrium) {
  const BudgetGame game(std::vector<std::uint32_t>(5, 1));
  const auto analysis = exhaustive_analysis(game, CostVersion::Max);
  ASSERT_TRUE(analysis.worst_equilibrium.has_value());
  EXPECT_TRUE(verify_equilibrium(*analysis.worst_equilibrium, CostVersion::Max).stable);
  EXPECT_EQ(social_cost(analysis.worst_equilibrium->underlying()),
            analysis.worst_equilibrium_diameter);
}

TEST(ExhaustiveAnalysis, DisconnectedGameOptIsCinf) {
  // σ < n−1: every realization disconnected, opt = n², PoA = 1.
  const BudgetGame game({0, 0, 1});
  const auto analysis = exhaustive_analysis(game, CostVersion::Sum);
  EXPECT_EQ(analysis.opt_diameter, 9U);
  EXPECT_GT(analysis.equilibria, 0U);
  EXPECT_DOUBLE_EQ(analysis.price_of_anarchy, 1.0);
}

TEST(ExhaustiveAnalysis, PoSNeverExceedsPoA) {
  Rng rng(3141);
  for (int round = 0; round < 4; ++round) {
    const auto budgets = random_budgets(5, 4 + rng.next_below(3), rng);
    const auto analysis = exhaustive_analysis(BudgetGame(budgets), CostVersion::Sum);
    if (analysis.equilibria == 0) continue;
    EXPECT_LE(analysis.price_of_stability, analysis.price_of_anarchy + 1e-12);
    EXPECT_LE(analysis.best_equilibrium_diameter, analysis.worst_equilibrium_diameter);
    EXPECT_LE(analysis.opt_diameter, analysis.best_equilibrium_diameter);
  }
}

}  // namespace
}  // namespace bbng
