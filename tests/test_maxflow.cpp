// Unit tests for Dinic maximum flow (backbone of vertex connectivity).
#include "graph/maxflow.hpp"

#include <gtest/gtest.h>

namespace bbng {
namespace {

TEST(Dinic, SingleEdge) {
  Dinic net(2);
  net.add_edge(0, 1, 5);
  EXPECT_EQ(net.max_flow(0, 1), 5U);
}

TEST(Dinic, SeriesTakesMinimum) {
  Dinic net(3);
  net.add_edge(0, 1, 4);
  net.add_edge(1, 2, 7);
  EXPECT_EQ(net.max_flow(0, 2), 4U);
}

TEST(Dinic, ParallelPathsAdd) {
  Dinic net(4);
  net.add_edge(0, 1, 3);
  net.add_edge(1, 3, 3);
  net.add_edge(0, 2, 2);
  net.add_edge(2, 3, 2);
  EXPECT_EQ(net.max_flow(0, 3), 5U);
}

TEST(Dinic, ClassicTextbookNetwork) {
  // CLRS-style example with a cross edge; max flow is 23.
  Dinic net(6);
  net.add_edge(0, 1, 16);
  net.add_edge(0, 2, 13);
  net.add_edge(1, 3, 12);
  net.add_edge(2, 1, 4);
  net.add_edge(2, 4, 14);
  net.add_edge(3, 2, 9);
  net.add_edge(3, 5, 20);
  net.add_edge(4, 3, 7);
  net.add_edge(4, 5, 4);
  EXPECT_EQ(net.max_flow(0, 5), 23U);
}

TEST(Dinic, NoPathIsZero) {
  Dinic net(4);
  net.add_edge(0, 1, 10);
  net.add_edge(2, 3, 10);
  EXPECT_EQ(net.max_flow(0, 3), 0U);
}

TEST(Dinic, ReverseDirectionBlocked) {
  Dinic net(2);
  net.add_edge(0, 1, 5);
  EXPECT_EQ(net.max_flow(1, 0), 0U);
}

TEST(Dinic, UnitCapacityBipartiteMatching) {
  // 3+3 bipartite: left {1,2,3}, right {4,5,6}; perfect matching exists.
  Dinic net(8);
  net.add_edge(0, 1, 1);
  net.add_edge(0, 2, 1);
  net.add_edge(0, 3, 1);
  net.add_edge(1, 4, 1);
  net.add_edge(1, 5, 1);
  net.add_edge(2, 4, 1);
  net.add_edge(3, 6, 1);
  net.add_edge(4, 7, 1);
  net.add_edge(5, 7, 1);
  net.add_edge(6, 7, 1);
  EXPECT_EQ(net.max_flow(0, 7), 3U);
}

TEST(Dinic, MinCutSideSeparatesSourceFromSink) {
  Dinic net(4);
  net.add_edge(0, 1, 1);
  net.add_edge(1, 2, 1);
  net.add_edge(2, 3, 1);
  EXPECT_EQ(net.max_flow(0, 3), 1U);
  const auto side = net.min_cut_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[3]);
}

TEST(Dinic, ResidualReflectsSaturation) {
  Dinic net(2);
  const std::uint32_t id = net.add_edge(0, 1, 9);
  EXPECT_EQ(net.max_flow(0, 1), 9U);
  EXPECT_EQ(net.residual(id), 0U);
  EXPECT_EQ(net.residual(id + 1), 9U);  // reverse edge carries the flow
}

TEST(Dinic, SourceEqualsSinkRejected) {
  Dinic net(2);
  EXPECT_THROW((void)net.max_flow(1, 1), std::invalid_argument);
}

TEST(Dinic, LargeCapacitiesNoOverflow) {
  Dinic net(3);
  const std::uint64_t big = 1ULL << 40;
  net.add_edge(0, 1, big);
  net.add_edge(1, 2, big);
  EXPECT_EQ(net.max_flow(0, 2), big);
}

}  // namespace
}  // namespace bbng
