// Spec-validation golden tests for the scenario engine: well-formed specs
// parse into the expected CampaignSpec, and each class of malformed spec
// (unknown task, empty grid, overlapping seed ranges, stray keys, …) is
// rejected with a message naming the offence. Also pins the job-expansion
// order and the content-derived per-job RNG seeds that the byte-identical
// resume contract depends on.
#include "engine/spec.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "engine/jobgraph.hpp"
#include "util/json.hpp"

namespace bbng {
namespace {

const char* kValidSingle = R"({
  "name": "tree_sum",
  "task": "dynamics",
  "version": "sum",
  "budgets": {"family": "tree"},
  "grid": {"n": [8, 12]},
  "seeds": {"begin": 0, "end": 5},
  "params": {"max_rounds": 50, "exact_limit": 1000, "schedule": "random_permutation"}
})";

const char* kValidCampaign = R"({
  "name": "two",
  "base_seed": 7,
  "scenarios": [
    {"name": "a", "task": "poa", "version": "max",
     "budgets": {"family": "random"},
     "grid": {"n": [8], "density": [1.0, 2.0]},
     "seeds": [{"begin": 0, "end": 3}, {"begin": 10, "end": 12}]},
    {"name": "b", "task": "audit", "version": "sum",
     "generator": "star",
     "grid": {"n": [9]},
     "seeds": {"begin": 0, "end": 4},
     "params": {"compute_connectivity": true}}
  ]
})";

TEST(EngineSpec, ParsesSingleScenarioForm) {
  const CampaignSpec campaign = parse_campaign_spec(kValidSingle);
  EXPECT_EQ(campaign.name, "tree_sum");
  EXPECT_EQ(campaign.base_seed, 1u);
  ASSERT_EQ(campaign.scenarios.size(), 1u);
  const ScenarioSpec& scenario = campaign.scenarios[0];
  EXPECT_EQ(scenario.name, "tree_sum");
  EXPECT_EQ(scenario.task, TaskKind::Dynamics);
  EXPECT_EQ(scenario.version, CostVersion::Sum);
  EXPECT_EQ(scenario.generator, GeneratorKind::RandomProfile);
  EXPECT_EQ(scenario.family, BudgetFamily::Tree);
  EXPECT_EQ(scenario.grid_n, (std::vector<std::uint32_t>{8, 12}));
  EXPECT_EQ(scenario.grid_density, std::vector<double>{1.0});
  EXPECT_EQ(scenario.seed_count(), 5u);
  EXPECT_EQ(scenario.params.max_rounds, 50u);
  EXPECT_EQ(scenario.params.exact_limit, 1000u);
  EXPECT_EQ(scenario.params.schedule, Schedule::RandomPermutation);
  EXPECT_TRUE(scenario.params.incremental);
  EXPECT_EQ(campaign.num_jobs(), 10u);
}

TEST(EngineSpec, ParsesCampaignForm) {
  const CampaignSpec campaign = parse_campaign_spec(kValidCampaign);
  EXPECT_EQ(campaign.name, "two");
  EXPECT_EQ(campaign.base_seed, 7u);
  ASSERT_EQ(campaign.scenarios.size(), 2u);
  EXPECT_EQ(campaign.scenarios[0].task, TaskKind::Poa);
  EXPECT_EQ(campaign.scenarios[0].family, BudgetFamily::Random);
  EXPECT_EQ(campaign.scenarios[0].grid_density, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(campaign.scenarios[0].seed_count(), 5u);   // 3 + 2
  EXPECT_EQ(campaign.scenarios[0].num_jobs(), 10u);    // 1 n × 2 densities × 5 seeds
  EXPECT_EQ(campaign.scenarios[1].generator, GeneratorKind::Star);
  EXPECT_TRUE(campaign.scenarios[1].params.compute_connectivity);
  EXPECT_EQ(campaign.num_jobs(), 14u);
}

TEST(EngineSpec, GaugeSampleSecondsParsesAtCampaignLevelAndDefaults) {
  // Default cadence when the key is absent.
  EXPECT_EQ(parse_campaign_spec(kValidSingle).gauge_sample_seconds, 0.25);
  EXPECT_EQ(parse_campaign_spec(kValidCampaign).gauge_sample_seconds, 0.25);

  const char* spec = R"({
    "name": "timed", "gauge_sample_seconds": 2.5,
    "task": "dynamics", "version": "sum",
    "budgets": {"family": "tree"},
    "grid": {"n": [8]}, "seeds": {"begin": 0, "end": 1}
  })";
  EXPECT_EQ(parse_campaign_spec(spec).gauge_sample_seconds, 2.5);
}

/// Each entry: (mutated spec text, expected error-message fragment).
struct BadSpec {
  const char* text;
  const char* fragment;
};

TEST(EngineSpec, MalformedSpecsRejectedWithNamedOffence) {
  const BadSpec cases[] = {
      // Unknown task.
      {R"({"name":"x","task":"frobnicate","version":"sum",
           "budgets":{"family":"tree"},"grid":{"n":[8]},"seeds":{"begin":0,"end":1}})",
       "unknown task \"frobnicate\""},
      // Empty grid.
      {R"({"name":"x","task":"dynamics","version":"sum",
           "budgets":{"family":"tree"},"grid":{"n":[]},"seeds":{"begin":0,"end":1}})",
       "grid.n must be a non-empty array"},
      // Overlapping seed ranges.
      {R"({"name":"x","task":"dynamics","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[8]},"seeds":[{"begin":0,"end":10},{"begin":5,"end":12}]})",
       "seed ranges overlap"},
      // Empty seed range.
      {R"({"name":"x","task":"dynamics","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[8]},"seeds":{"begin":4,"end":4}})",
       "empty seed range"},
      // Unknown version.
      {R"({"name":"x","task":"dynamics","version":"avg",
           "budgets":{"family":"tree"},"grid":{"n":[8]},"seeds":{"begin":0,"end":1}})",
       "unknown version"},
      // Unknown key at scenario level.
      {R"({"name":"x","task":"dynamics","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[8]},"seeds":{"begin":0,"end":1},"grids":{}})",
       "unknown key \"grids\""},
      // Unknown params key for the task.
      {R"({"name":"x","task":"swap_equilibrium","version":"sum",
           "budgets":{"family":"unit"},"grid":{"n":[8]},"seeds":{"begin":0,"end":1},
           "params":{"max_rounds":5}})",
       "unknown key \"max_rounds\" in params"},
      // Missing budgets for random_profile.
      {R"({"name":"x","task":"dynamics","version":"sum",
           "grid":{"n":[8]},"seeds":{"begin":0,"end":1}})",
       "missing required key \"budgets\""},
      // Budgets with an implied-budget generator.
      {R"({"name":"x","task":"dynamics","version":"sum","generator":"path",
           "budgets":{"family":"tree"},"grid":{"n":[8]},"seeds":{"begin":0,"end":1}})",
       "implies its budgets"},
      // Unknown budget family.
      {R"({"name":"x","task":"dynamics","version":"sum","budgets":{"family":"plutocratic"},
           "grid":{"n":[8]},"seeds":{"begin":0,"end":1}})",
       "unknown budget family"},
      // Uniform family without b.
      {R"({"name":"x","task":"dynamics","version":"sum","budgets":{"family":"uniform"},
           "grid":{"n":[8]},"seeds":{"begin":0,"end":1}})",
       "uniform budgets need \"b\""},
      // Uniform b too large for the grid.
      {R"({"name":"x","task":"dynamics","version":"sum",
           "budgets":{"family":"uniform","b":8},
           "grid":{"n":[8]},"seeds":{"begin":0,"end":1}})",
       "needs n > b"},
      // Density axis outside the random family.
      {R"({"name":"x","task":"dynamics","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[8],"density":[1.0,2.0]},"seeds":{"begin":0,"end":1}})",
       "density axis is only meaningful"},
      // Even a single-entry density is rejected outside the random family —
      // it would be stamped into every record and perturb job seeds while
      // never being applied.
      {R"({"name":"x","task":"dynamics","version":"sum","budgets":{"family":"unit"},
           "grid":{"n":[8],"density":[2.0]},"seeds":{"begin":0,"end":1}})",
       "density axis is only meaningful"},
      // Density that no budget vector can realise (σ > n·(n−1)) dies at
      // validate time, not mid-campaign.
      {R"({"name":"x","task":"dynamics","version":"sum","budgets":{"family":"random"},
           "grid":{"n":[8],"density":[50.0]},"seeds":{"begin":0,"end":1}})",
       "infeasible"},
      // Duplicate n.
      {R"({"name":"x","task":"dynamics","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[8,8]},"seeds":{"begin":0,"end":1}})",
       "duplicated"},
      // Duplicate density (would run and double-count identical jobs).
      {R"({"name":"x","task":"dynamics","version":"sum","budgets":{"family":"random"},
           "grid":{"n":[8],"density":[1.0,1.0]},"seeds":{"begin":0,"end":1}})",
       "duplicated"},
      // n too small.
      {R"({"name":"x","task":"dynamics","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[1]},"seeds":{"begin":0,"end":1}})",
       "at least 2"},
      // n beyond 32 bits must error, not truncate (4294967298 ≡ 2 mod 2^32).
      {R"({"name":"x","task":"dynamics","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[4294967298]},"seeds":{"begin":0,"end":1}})",
       "does not fit 32 bits"},
      // Uniform b beyond 32 bits must error, not truncate to 0.
      {R"({"name":"x","task":"dynamics","version":"sum",
           "budgets":{"family":"uniform","b":4294967296},
           "grid":{"n":[8]},"seeds":{"begin":0,"end":1}})",
       "does not fit 32 bits"},
      // Duplicate scenario names in a campaign.
      {R"({"name":"c","scenarios":[
           {"name":"a","task":"dynamics","version":"sum","budgets":{"family":"tree"},
            "grid":{"n":[8]},"seeds":{"begin":0,"end":1}},
           {"name":"a","task":"dynamics","version":"max","budgets":{"family":"tree"},
            "grid":{"n":[8]},"seeds":{"begin":0,"end":1}}]})",
       "duplicate scenario name"},
      // Gauge cadence of zero would spin the sampler thread; reject.
      {R"({"name":"x","gauge_sample_seconds":0,"task":"dynamics","version":"sum",
           "budgets":{"family":"tree"},"grid":{"n":[8]},"seeds":{"begin":0,"end":1}})",
       "gauge_sample_seconds must be in (0, 60]"},
      // Cadence beyond a minute means no samples for typical runs; reject.
      {R"({"name":"x","gauge_sample_seconds":61,"task":"dynamics","version":"sum",
           "budgets":{"family":"tree"},"grid":{"n":[8]},"seeds":{"begin":0,"end":1}})",
       "gauge_sample_seconds must be in (0, 60]"},
      // Gauge cadence misplaced inside a campaign scenario.
      {R"({"name":"c","scenarios":[
           {"name":"a","gauge_sample_seconds":1.0,"task":"dynamics","version":"sum",
            "budgets":{"family":"tree"},"grid":{"n":[8]},"seeds":{"begin":0,"end":1}}]})",
       "gauge_sample_seconds belongs at the campaign level"},
      // base_seed misplaced inside a campaign scenario.
      {R"({"name":"c","scenarios":[
           {"name":"a","base_seed":3,"task":"dynamics","version":"sum",
            "budgets":{"family":"tree"},"grid":{"n":[8]},"seeds":{"begin":0,"end":1}}]})",
       "base_seed belongs at the campaign level"},
      // Empty scenarios array.
      {R"({"name":"c","scenarios":[]})", "non-empty array"},
      // Missing name.
      {R"({"task":"dynamics","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[8]},"seeds":{"begin":0,"end":1}})",
       "missing required key \"name\""},
      // Unknown solver backend, named together with the registered ones.
      {R"({"name":"x","task":"nash_audit","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[6]},"seeds":{"begin":0,"end":1},
           "params":{"solver":"quantum_annealer"}})",
       "unknown solver \"quantum_annealer\""},
      // solver is only meaningful where best-response queries happen.
      {R"({"name":"x","task":"audit","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[6]},"seeds":{"begin":0,"end":1},
           "params":{"solver":"exact_bb"}})",
       "unknown key \"solver\" in params"},
      // Unknown key inside solver_budget.
      {R"({"name":"x","task":"nash_audit","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[6]},"seeds":{"begin":0,"end":1},
           "params":{"solver_budget":{"node_limit":10,"fuel":3}}})",
       "unknown key \"fuel\""},
      // solver_budget must be an object.
      {R"({"name":"x","task":"poa","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[6]},"seeds":{"begin":0,"end":1},
           "params":{"solver_budget":12}})",
       "solver_budget must be an object"},
      // A deadline aimed at the swap ladder (explicitly or via the
      // dynamics/poa default) would be a silent no-op — reject it.
      {R"({"name":"x","task":"dynamics","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[6]},"seeds":{"begin":0,"end":1},
           "params":{"solver_budget":{"deadline_ms":250}}})",
       "deadline_ms is not supported by the \"swap\" backend"},
      {R"({"name":"x","task":"nash_audit","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[6]},"seeds":{"begin":0,"end":1},
           "params":{"solver":"swap","solver_budget":{"deadline_ms":250}}})",
       "deadline_ms is not supported by the \"swap\" backend"},
  };
  for (const BadSpec& bad : cases) {
    try {
      static_cast<void>(parse_campaign_spec(bad.text));
      FAIL() << "spec accepted but should have been rejected: " << bad.text;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find(bad.fragment), std::string::npos)
          << "error was: " << error.what() << "\nexpected fragment: " << bad.fragment;
    }
  }
}

TEST(EngineSpec, ParsesSolverAndSolverBudgetParams) {
  const CampaignSpec campaign = parse_campaign_spec(R"({
    "name": "nash_probe",
    "task": "nash_audit",
    "version": "max",
    "budgets": {"family": "tree"},
    "grid": {"n": [7]},
    "seeds": {"begin": 0, "end": 3},
    "params": {"solver": "exact_bb",
               "solver_budget": {"node_limit": 50000, "deadline_ms": 250},
               "incremental": false}})");
  ASSERT_EQ(campaign.scenarios.size(), 1u);
  const ScenarioSpec& scenario = campaign.scenarios[0];
  EXPECT_EQ(scenario.task, TaskKind::NashAudit);
  EXPECT_EQ(scenario.params.solver, "exact_bb");
  EXPECT_EQ(scenario.params.solver_node_limit, 50'000u);
  EXPECT_EQ(scenario.params.solver_deadline_ms, 250u);
  EXPECT_FALSE(scenario.params.incremental);
  // Defaults: empty solver string (task default), zero budget knobs.
  const CampaignSpec plain = parse_campaign_spec(kValidSingle);
  EXPECT_TRUE(plain.scenarios[0].params.solver.empty());
  EXPECT_EQ(plain.scenarios[0].params.solver_node_limit, 0u);
  EXPECT_EQ(plain.scenarios[0].params.solver_deadline_ms, 0u);
}

TEST(EngineSpec, ParsesChurnParams) {
  const CampaignSpec campaign = parse_campaign_spec(R"({
    "name": "churn_probe",
    "task": "churn",
    "version": "sum",
    "budgets": {"family": "tree"},
    "grid": {"n": [9]},
    "seeds": {"begin": 0, "end": 2},
    "params": {"solver": "swap",
               "churn": {"events": 40, "checkpoint_every": 10, "mode": "respond",
                         "max_budget": 5,
                         "weights": {"join": 8, "leave": 1, "grow": 8, "shrink": 2,
                                     "perturb": 0}}}})");
  ASSERT_EQ(campaign.scenarios.size(), 1u);
  const ScenarioSpec& scenario = campaign.scenarios[0];
  EXPECT_EQ(scenario.task, TaskKind::Churn);
  EXPECT_EQ(scenario.params.churn_events, 40u);
  EXPECT_EQ(scenario.params.churn_checkpoint_every, 10u);
  EXPECT_EQ(scenario.params.churn_mode, ChurnMode::Respond);
  EXPECT_EQ(scenario.params.churn_max_budget, 5u);
  EXPECT_EQ(scenario.params.churn_weights.join, 8u);
  EXPECT_EQ(scenario.params.churn_weights.perturb, 0u);
  EXPECT_EQ(default_solver(TaskKind::Churn), "exact_bb");

  const BadSpec churn_cases[] = {
      // The churn object is strict: unknown keys and degenerate values die.
      {R"({"name":"x","task":"churn","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[8]},"seeds":{"begin":0,"end":1},
           "params":{"churn":{"events":0}}})",
       "churn.events must be positive"},
      {R"({"name":"x","task":"churn","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[8]},"seeds":{"begin":0,"end":1},
           "params":{"churn":{"mode":"drift"}}})",
       "unknown churn mode \"drift\""},
      {R"({"name":"x","task":"churn","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[8]},"seeds":{"begin":0,"end":1},
           "params":{"churn":{"cadence":3}}})",
       "unknown key \"cadence\""},
      {R"({"name":"x","task":"churn","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[8]},"seeds":{"begin":0,"end":1},
           "params":{"churn":{"weights":{"join":0,"leave":0,"grow":0,"shrink":0,
                                         "perturb":0}}}})",
       "at least one event kind"},
      // The churn params object belongs to the churn task only.
      {R"({"name":"x","task":"dynamics","version":"sum","budgets":{"family":"tree"},
           "grid":{"n":[8]},"seeds":{"begin":0,"end":1},
           "params":{"churn":{"events":4}}})",
       "unknown key \"churn\""},
  };
  for (const BadSpec& bad : churn_cases) {
    try {
      static_cast<void>(parse_campaign_spec(bad.text));
      FAIL() << "accepted: " << bad.text;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find(bad.fragment), std::string::npos)
          << error.what();
    }
  }
}

TEST(EngineSpec, ParsesGraphCoreParam) {
  // graph_core selects the oracle's adjacency layout; both values are legal
  // on the tasks that score strategies, csr is the default, and anything
  // else is rejected by name.
  const CampaignSpec vec = parse_campaign_spec(R"({
    "name": "core_probe",
    "task": "swap_equilibrium",
    "version": "sum",
    "budgets": {"family": "tree"},
    "grid": {"n": [7]},
    "seeds": {"begin": 0, "end": 2},
    "params": {"graph_core": "vector"}})");
  EXPECT_EQ(vec.scenarios[0].params.graph_core, GraphCore::kVector);
  const CampaignSpec csr = parse_campaign_spec(R"({
    "name": "core_probe",
    "task": "dynamics",
    "version": "sum",
    "budgets": {"family": "tree"},
    "grid": {"n": [7]},
    "seeds": {"begin": 0, "end": 2},
    "params": {"graph_core": "csr"}})");
  EXPECT_EQ(csr.scenarios[0].params.graph_core, GraphCore::kCsr);
  EXPECT_EQ(parse_campaign_spec(kValidSingle).scenarios[0].params.graph_core, GraphCore::kCsr)
      << "csr must be the default";
  try {
    static_cast<void>(parse_campaign_spec(R"({
      "name": "core_probe",
      "task": "dynamics",
      "version": "sum",
      "budgets": {"family": "tree"},
      "grid": {"n": [7]},
      "seeds": {"begin": 0, "end": 2},
      "params": {"graph_core": "linked_list"}})"));
    FAIL() << "unknown graph_core accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("graph_core"), std::string::npos) << error.what();
  }
}

TEST(EngineSpec, MalformedJsonSurfacesParsePosition) {
  EXPECT_THROW(static_cast<void>(parse_campaign_spec("{\"name\": }")), JsonParseError);
}

TEST(EngineSpec, FingerprintIsStableAndContentSensitive) {
  const std::string a = spec_fingerprint(kValidSingle);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(a, spec_fingerprint(kValidSingle));
  EXPECT_NE(a, spec_fingerprint(std::string(kValidSingle) + " "));
}

TEST(EngineSpec, ExpansionOrderAndIds) {
  const CampaignSpec campaign = parse_campaign_spec(kValidCampaign);
  const std::vector<Job> jobs = expand_jobs(campaign);
  ASSERT_EQ(jobs.size(), campaign.num_jobs());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, i);
  }
  // Scenario a: n=8 × density {1.0, 2.0} × seeds {0,1,2,10,11}; then b.
  EXPECT_EQ(jobs[0].scenario_index, 0u);
  EXPECT_EQ(jobs[0].n, 8u);
  EXPECT_DOUBLE_EQ(jobs[0].density, 1.0);
  EXPECT_EQ(jobs[0].seed, 0u);
  EXPECT_EQ(jobs[3].seed, 10u);  // second range follows the first
  EXPECT_DOUBLE_EQ(jobs[5].density, 2.0);
  EXPECT_EQ(jobs[10].scenario_index, 1u);
  EXPECT_EQ(jobs[10].n, 9u);
}

TEST(EngineSpec, JobSeedsAreContentDerived) {
  // Distinct jobs get distinct streams…
  const CampaignSpec campaign = parse_campaign_spec(kValidCampaign);
  const std::vector<Job> jobs = expand_jobs(campaign);
  std::set<std::uint64_t> seeds;
  for (const Job& job : jobs) seeds.insert(job.rng_seed);
  EXPECT_EQ(seeds.size(), jobs.size());
  // …the derivation ignores expansion position (only content matters)…
  EXPECT_EQ(job_rng_seed(7, "a", 8, 2.0, 11), jobs[9].rng_seed);
  // …and every input participates.
  const std::uint64_t base = job_rng_seed(1, "a", 8, 1.0, 0);
  EXPECT_NE(base, job_rng_seed(2, "a", 8, 1.0, 0));
  EXPECT_NE(base, job_rng_seed(1, "b", 8, 1.0, 0));
  EXPECT_NE(base, job_rng_seed(1, "a", 9, 1.0, 0));
  EXPECT_NE(base, job_rng_seed(1, "a", 8, 1.5, 0));
  EXPECT_NE(base, job_rng_seed(1, "a", 8, 1.0, 1));
}

TEST(EngineSpec, LoadRejectsMissingFile) {
  EXPECT_THROW(static_cast<void>(load_campaign_spec("/nonexistent/spec.json")),
               std::invalid_argument);
}

}  // namespace
}  // namespace bbng
