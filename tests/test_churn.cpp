// Differential tests for the churn engine and the bugfixes that unblock it:
// after EVERY applied event the incremental ε-Nash certificate must agree
// bit-for-bit with a from-scratch verify_nash_equilibrium of the live state
// under the live budget caps — on both graph cores, both cost versions, and
// both churn modes, with the deletion-locality skip re-derived in debug
// (verify_skips). Alongside: capped solves of all three backends against
// brute-force enumeration, the budget-cap transposition-cache key, the
// collision-safe cycle detector, and the dynamics budget gate.
#include "game/churn.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "engine/runner.hpp"
#include "game/dynamics.hpp"
#include "game/equilibrium.hpp"
#include "game/strategy_eval.hpp"
#include "graph/generators.hpp"
#include "solver/exact_bb.hpp"
#include "solver/registry.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace bbng {
namespace {

/// Ground truth for capped solves: the cheapest strategy of EXACTLY `cap`
/// heads by full enumeration (supersets never cost more, so this equals the
/// optimum over all strategies of size ≤ cap).
std::uint64_t brute_capped_best(const Digraph& g, Vertex u, CostVersion version,
                                std::uint32_t cap) {
  const std::uint32_t n = g.num_vertices();
  std::vector<Vertex> candidates;
  for (Vertex t = 0; t < n; ++t) {
    if (t != u) candidates.push_back(t);
  }
  const StrategyEvaluator eval(g, u, version);
  StrategyEvaluator::Scratch scratch(n);
  std::uint64_t best = ~0ULL;
  std::vector<Vertex> trial(cap);
  for (CombinationIterator it(static_cast<std::uint32_t>(candidates.size()), cap); it.valid();
       it.advance()) {
    const auto indices = it.current();
    for (std::size_t i = 0; i < indices.size(); ++i) trial[i] = candidates[indices[i]];
    best = std::min(best, eval.evaluate(trial, scratch));
  }
  return best;
}

/// Engine certificate vs the from-scratch comparator, bit for bit.
void expect_matches_audit(ChurnEngine& engine, const char* context) {
  const NashReport report = engine.audit();
  ASSERT_EQ(engine.epsilon(), report.epsilon) << context;
  ASSERT_EQ(engine.stable(), report.stable) << context;
  if (!report.stable) {
    ASSERT_EQ(engine.deviator(), report.deviator) << context;
  }
}

Digraph small_instance(std::uint32_t n, Rng& rng) {
  std::vector<std::uint32_t> budgets = random_budgets(n, n, rng);
  for (auto& b : budgets) b = std::min(b, 2U);
  return random_profile(budgets, rng);
}

// ---------------------------------------------------------------------------
// Tentpole: differential churn suite.

TEST(Churn, DifferentialAgainstFromScratchAudit) {
  int events_applied = 0;
  for (const GraphCore core : {GraphCore::kCsr, GraphCore::kVector}) {
    for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
      for (const ChurnMode mode : {ChurnMode::Track, ChurnMode::Respond}) {
        Rng rng(1000 + static_cast<std::uint64_t>(core == GraphCore::kCsr) +
                2 * static_cast<std::uint64_t>(version == CostVersion::Max) +
                4 * static_cast<std::uint64_t>(mode == ChurnMode::Respond));
        const Digraph initial = small_instance(8, rng);
        ChurnConfig config;
        config.version = version;
        config.mode = mode;
        config.budget.core = core;
        config.verify_skips = true;  // re-derive every deletion-locality skip
        ChurnEngine engine(initial, initial.budgets(), config);
        expect_matches_audit(engine, "initial");
        EXPECT_TRUE(engine.certified());

        ChurnTraceSampler sampler({}, /*max_budget=*/3, /*seed=*/rng.next_below(1U << 30));
        for (int e = 0; e < 20; ++e) {
          const auto event = sampler.next(engine.graph(), engine.budgets());
          if (!event) break;
          engine.apply(*event);
          ++events_applied;
          SCOPED_TRACE(std::string(to_string(mode)) + " " + to_string(version) + " event " +
                       std::to_string(e) + " " + to_string(event->kind));
          expect_matches_audit(engine, to_string(event->kind));
          // exact_bb keeps the whole certificate exact at all times.
          EXPECT_TRUE(engine.certified());
        }
      }
    }
  }
  // The sampler must actually exercise the engine, not bail immediately.
  EXPECT_GE(events_applied, 100);
}

TEST(Churn, StandingRegretsMatchBruteForce) {
  Rng rng(77);
  const Digraph initial = small_instance(7, rng);
  ChurnConfig config;
  config.version = CostVersion::Sum;
  config.mode = ChurnMode::Track;  // regrets accumulate — nothing responds
  ChurnEngine engine(initial, initial.budgets(), config);
  ChurnTraceSampler sampler({}, 3, 909);
  for (int e = 0; e < 12; ++e) {
    const auto event = sampler.next(engine.graph(), engine.budgets());
    ASSERT_TRUE(event.has_value());
    engine.apply(*event);
  }
  const Digraph& g = engine.graph();
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const std::uint32_t cap = engine.budgets()[u];
    if (cap == 0) {
      EXPECT_EQ(engine.regret(u), 0U);
      continue;
    }
    const StrategyEvaluator eval(g, u, CostVersion::Sum);
    const std::uint64_t best = brute_capped_best(g, u, CostVersion::Sum, cap);
    EXPECT_EQ(engine.regret(u), eval.current_cost() - best) << "player " << u;
    EXPECT_TRUE(engine.player_certified(u));
  }
}

TEST(Churn, EventSemantics) {
  // A 5-star owned by the leaves plus an inactive slot; SUM version.
  Digraph g(6);
  for (Vertex leaf = 1; leaf <= 4; ++leaf) g.add_arc(leaf, 0);
  std::vector<std::uint32_t> caps = {0, 1, 1, 1, 1, 0};
  ChurnConfig config;
  ChurnEngine engine(g, caps, config);
  EXPECT_EQ(engine.active_players(), 4U);

  // Join: slot 5 becomes a player with budget 2 but owns nothing yet.
  engine.apply({ChurnEventKind::Join, 5, 2, 0, 0});
  EXPECT_EQ(engine.budgets()[5], 2U);
  EXPECT_EQ(engine.graph().out_degree(5), 0U);
  EXPECT_GT(engine.regret(5), 0U);  // buying in would connect it
  expect_matches_audit(engine, "join");

  // Leave retires the PLAYER, not the vertex: player 1's arc 1→0 drops and
  // its budget zeroes, but vertex 1 keeps its seat in everyone's cost sum.
  engine.apply({ChurnEventKind::Leave, 1, 0, 0, 0});
  EXPECT_EQ(engine.budgets()[1], 0U);
  EXPECT_EQ(engine.graph().out_degree(1), 0U);
  EXPECT_EQ(engine.regret(1), 0U);
  EXPECT_EQ(engine.active_players(), 4U);  // 2, 3, 4, 5
  expect_matches_audit(engine, "leave");

  // Grow: player 2 may now buy a second arc — only its own query changes.
  engine.apply({ChurnEventKind::BudgetGrow, 2, 2, 0, 0});
  EXPECT_EQ(engine.budgets()[2], 2U);
  expect_matches_audit(engine, "grow");

  // Perturb: rewire 3→0 to 3→4 exogenously.
  engine.apply({ChurnEventKind::Perturb, 3, 0, 0, 4});
  EXPECT_FALSE(engine.graph().has_arc(3, 0));
  EXPECT_TRUE(engine.graph().has_arc(3, 4));
  expect_matches_audit(engine, "perturb");

  const ChurnStats& stats = engine.stats();
  EXPECT_EQ(stats.events, 4U);
  EXPECT_EQ(stats.joins, 1U);
  EXPECT_EQ(stats.leaves, 1U);
  EXPECT_EQ(stats.grows, 1U);
  EXPECT_EQ(stats.perturbs, 1U);
}

TEST(Churn, TrackShrinkTrimsGreedily) {
  // Player 0 owns three arcs; shrinking its budget to 1 must physically trim
  // the strategy down to the single cheapest-to-keep head.
  Digraph g(5);
  g.add_arc(0, 1);
  g.add_arc(0, 2);
  g.add_arc(0, 4);
  g.add_arc(3, 2);
  std::vector<std::uint32_t> caps = {3, 0, 0, 1, 0};
  ChurnConfig config;
  config.mode = ChurnMode::Track;
  config.verify_skips = true;
  ChurnEngine engine(g, caps, config);
  engine.apply({ChurnEventKind::BudgetShrink, 0, 1, 0, 0});
  EXPECT_EQ(engine.graph().out_degree(0), 1U);
  EXPECT_EQ(engine.budgets()[0], 1U);
  expect_matches_audit(engine, "shrink");
  EXPECT_EQ(engine.stats().shrinks, 1U);
  EXPECT_EQ(engine.stats().moves, 1U);
}

TEST(Churn, NoDeltaEventsSolveOnlyTheEventPlayer) {
  // Join/grow-only trace: every event leaves the graph untouched, so the
  // engine must re-solve ONLY the event's player while the from-scratch
  // baseline would re-audit everyone — the ≥5× claim in miniature.
  Rng rng(31);
  const Digraph initial = small_instance(24, rng);
  ChurnConfig config;
  config.solver = "swap";
  ChurnEngine engine(initial, initial.budgets(), config);
  const std::uint64_t setup_searches = engine.stats().solver_searches;

  ChurnTraceWeights weights;
  weights.join = 1;
  weights.leave = 0;
  weights.grow = 1;
  weights.shrink = 0;
  weights.perturb = 0;
  ChurnTraceSampler sampler(weights, /*max_budget=*/4, /*seed=*/5);
  std::uint64_t events = 0;
  while (events < 30) {
    const auto event = sampler.next(engine.graph(), engine.budgets());
    if (!event) break;
    engine.apply(*event);
    ++events;
  }
  ASSERT_GE(events, 10U);
  const ChurnStats& stats = engine.stats();
  const std::uint64_t incremental = stats.solver_searches - setup_searches;
  EXPECT_LE(incremental, stats.events);  // ≤ one fresh search per event
  EXPECT_GE(stats.skips_clean, stats.events * 5);
  EXPECT_GE(stats.baseline_solves, 5 * std::max<std::uint64_t>(incremental, 1));
}

TEST(Churn, DeletionEventsKeepCertificatesViaLocalityLemma) {
  // Star with hub 0; leaves 1..4 each own an arc to the hub, and the hub
  // owns a reverse arc 0→2. Retiring player 2 drops its arc 2→0, but the
  // underlying edge 0–2 survives through the hub's arc — every current cost
  // is measurably unchanged, so the deletion lemma must carry all standing
  // leaf certificates across without a single re-solve (each skip
  // re-derived by verify_skips).
  Digraph g(5);
  g.add_arc(0, 2);
  for (Vertex leaf = 1; leaf <= 4; ++leaf) g.add_arc(leaf, 0);
  ChurnConfig config;
  config.version = CostVersion::Sum;
  config.verify_skips = true;
  ChurnEngine engine(g, {1, 1, 1, 1, 1}, config);
  // Player 2's arc duplicates the hub's underlying edge, so 2 itself has
  // regret (it could rewire somewhere useful) — everyone else is a certified
  // best responder.
  EXPECT_EQ(engine.deviator(), 2U);
  expect_matches_audit(engine, "initial");

  engine.apply({ChurnEventKind::Leave, 2, 0, 0, 0});
  EXPECT_TRUE(engine.graph().has_arc(0, 2));  // the vertex stays wired in
  EXPECT_TRUE(engine.stable());  // the one deviator retired
  expect_matches_audit(engine, "redundant leave");
  // Leaves 1, 3, 4 keep their certificates via the lemma; the hub sits on
  // the trivial bound and player 2 is retired — nobody re-solves.
  EXPECT_EQ(engine.stats().skips_locality, 3U);
}

TEST(Churn, DeletionTraceOnConvergedStateStaysDifferential) {
  // Converge to a Nash state, then hit it with deletions only; the
  // incremental certificate must track the audit after every event with
  // every locality skip re-derived.
  Rng rng(58);
  const Digraph initial = small_instance(10, rng);
  DynamicsConfig dyn;
  dyn.version = CostVersion::Sum;
  const DynamicsResult converged = run_best_response_dynamics(initial, dyn);
  ASSERT_TRUE(converged.converged);

  ChurnConfig config;
  config.verify_skips = true;
  ChurnEngine engine(converged.graph, converged.graph.budgets(), config);
  ASSERT_TRUE(engine.stable());

  ChurnTraceWeights weights;
  weights.join = 0;
  weights.leave = 1;
  weights.grow = 0;
  weights.shrink = 1;
  weights.perturb = 0;
  ChurnTraceSampler sampler(weights, 3, 17);
  for (int e = 0; e < 6; ++e) {
    const auto event = sampler.next(engine.graph(), engine.budgets());
    if (!event) break;
    engine.apply(*event);
    expect_matches_audit(engine, to_string(event->kind));
  }
}

TEST(Churn, HeuristicBackendTracksItsOwnAudit) {
  // With a heuristic backend the engine must still report exactly what a
  // from-scratch audit with that backend reports (same ε, same deviator).
  for (const ChurnMode mode : {ChurnMode::Track, ChurnMode::Respond}) {
    Rng rng(mode == ChurnMode::Track ? 301 : 302);
    const Digraph initial = small_instance(9, rng);
    ChurnConfig config;
    config.solver = "swap";
    config.mode = mode;
    ChurnEngine engine(initial, initial.budgets(), config);
    expect_matches_audit(engine, "initial");
    ChurnTraceSampler sampler({}, 3, 404);
    for (int e = 0; e < 15; ++e) {
      const auto event = sampler.next(engine.graph(), engine.budgets());
      if (!event) break;
      engine.apply(*event);
      SCOPED_TRACE(std::string(to_string(mode)) + " event " + std::to_string(e));
      expect_matches_audit(engine, to_string(event->kind));
    }
  }
}

TEST(Churn, RespondModePlayersAnswerEvents) {
  Rng rng(21);
  const Digraph initial = small_instance(8, rng);
  ChurnConfig config;
  config.mode = ChurnMode::Respond;
  ChurnEngine engine(initial, initial.budgets(), config);
  // A joining player immediately buys a full budget-sized strategy and is
  // left regret-free (its own move cannot change its own optimum).
  Vertex slot = initial.num_vertices();
  for (Vertex u = 0; u < initial.num_vertices(); ++u) {
    if (engine.budgets()[u] == 0) {
      slot = u;
      break;
    }
  }
  if (slot < initial.num_vertices()) {
    engine.apply({ChurnEventKind::Join, slot, 2, 0, 0});
    EXPECT_EQ(engine.graph().out_degree(slot), 2U);
    EXPECT_EQ(engine.regret(slot), 0U);
    EXPECT_TRUE(engine.player_certified(slot));
    expect_matches_audit(engine, "respond join");
  }
}

TEST(Churn, ConstructorRejectsInvalidStates) {
  Digraph g(4);
  g.add_arc(0, 1);
  EXPECT_THROW((ChurnEngine(g, {1, 0, 0}, {})), std::invalid_argument);     // size mismatch
  EXPECT_THROW((ChurnEngine(g, {0, 0, 0, 0}, {})), std::invalid_argument);  // cap 0, degree 1
  EXPECT_THROW((ChurnEngine(g, {4, 0, 0, 0}, {})), std::invalid_argument);  // cap ≥ n
  ChurnConfig preset;
  preset.budget.budget_cap = 2;  // the per-query knob must come in unset
  EXPECT_THROW((ChurnEngine(g, {1, 0, 0, 0}, preset)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Satellite: capped solves vs brute force on all three backends.

TEST(SolverCaps, AllBackendsRespectBudgetCap) {
  Rng rng(2026);
  for (int round = 0; round < 30; ++round) {
    const std::uint32_t n = 6 + static_cast<std::uint32_t>(round % 3);
    const Digraph g = small_instance(n, rng);
    for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
      for (Vertex u = 0; u < n; ++u) {
        for (const std::uint32_t cap : {1U, 2U, 3U}) {
          const std::uint64_t brute = brute_capped_best(g, u, version, cap);
          for (const char* name : {"exact_bb", "swap", "portfolio"}) {
            SolverBudget budget;
            budget.budget_cap = cap;
            const SolverResult result = find_solver(name).solve(g, u, version, budget);
            SCOPED_TRACE(std::string(name) + " round " + std::to_string(round) + " u " +
                         std::to_string(u) + " cap " + std::to_string(cap));
            // The returned strategy is cap-sized and realises the cost on
            // the REAL graph; current_cost anchors to the real strategy.
            ASSERT_EQ(result.strategy.size(), cap);
            const StrategyEvaluator eval(g, u, version);
            StrategyEvaluator::Scratch scratch(n);
            ASSERT_EQ(eval.evaluate(result.strategy, scratch), result.cost);
            ASSERT_EQ(result.current_cost, eval.current_cost());
            ASSERT_GE(result.cost, brute);  // never better than the optimum
            if (std::string(name) == "exact_bb") {
              ASSERT_EQ(result.cost, brute);
              ASSERT_TRUE(result.optimal);
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Satellite: the transposition cache keys on the budget cap.

TEST(SolverCaps, ShrinkThenGrowNeverReplaysTheShrunkAnswer) {
  Rng rng(99);
  const Digraph g = small_instance(6, rng);
  const ExactBranchAndBound bb;
  TranspositionCache cache;
  SolverBudget shrink_budget;
  shrink_budget.budget_cap = 1;
  SolverBudget grow_budget;
  grow_budget.budget_cap = 2;

  const SolverResult shrunk = bb.solve(g, 0, CostVersion::Sum, shrink_budget, nullptr, &cache);
  // Pre-fix the key embedded the out-degree, so this looked like the same
  // query and replayed the 1-arc answer for the 2-arc space.
  const SolverResult grown = bb.solve(g, 0, CostVersion::Sum, grow_budget, nullptr, &cache);
  EXPECT_EQ(cache.hits(), 0U);
  const SolverResult fresh = bb.solve(g, 0, CostVersion::Sum, grow_budget);
  EXPECT_EQ(grown.cost, fresh.cost);
  EXPECT_EQ(grown.strategy, fresh.strategy);
  EXPECT_LE(grown.cost, shrunk.cost);  // more budget never hurts

  // Each cap replays against its OWN entry.
  (void)bb.solve(g, 0, CostVersion::Sum, shrink_budget, nullptr, &cache);
  (void)bb.solve(g, 0, CostVersion::Sum, grow_budget, nullptr, &cache);
  EXPECT_EQ(cache.hits(), 2U);
}

// ---------------------------------------------------------------------------
// Satellite: collision-safe cycle detection.

TEST(SeenStateSet, VerifiesStatesOnHashHit) {
  // A constant hasher forces every insert into one bucket: distinct states
  // must still be told apart (no phantom cycle), repeats still detected.
  SeenStateSet seen(+[](const Digraph&) -> std::uint64_t { return 42; });
  Digraph a(3);
  a.add_arc(0, 1);
  Digraph b(3);
  b.add_arc(0, 2);
  EXPECT_TRUE(seen.insert(a));
  EXPECT_TRUE(seen.insert(b));  // hash-equal yet distinct — not a cycle
  EXPECT_EQ(seen.collisions(), 1U);
  EXPECT_FALSE(seen.insert(a));  // a genuine repeat, byte-verified
  EXPECT_EQ(seen.size(), 2U);
  EXPECT_EQ(seen.collisions(), 1U);
}

TEST(SeenStateSet, DefaultHasherCountsNoCollisionsOnSmallRuns) {
  SeenStateSet seen;
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const Digraph g = small_instance(6, rng);
    (void)seen.insert(g);
  }
  EXPECT_EQ(seen.collisions(), 0U);
}

// ---------------------------------------------------------------------------
// Satellite: dynamics gates on budget, not current degree.

TEST(Dynamics, IsolatedPlayerWithBudgetBuysIn) {
  // Player 5 starts with no arcs but budget 2. Pre-fix the move loop skipped
  // every zero-degree player, so it stayed isolated forever; now it must buy
  // a full strategy and the run must land on a capped Nash state.
  Digraph g(6);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(2, 3);
  g.add_arc(3, 4);
  DynamicsConfig config;
  config.version = CostVersion::Sum;
  config.budgets = {1, 1, 1, 1, 0, 2};
  const DynamicsResult result = run_best_response_dynamics(g, config);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.graph.out_degree(5), 2U);
  EXPECT_EQ(result.graph.out_degree(4), 0U);  // budget 0 stays a bystander
  const NashReport report = verify_nash_equilibrium(result.graph, CostVersion::Sum, {},
                                                    "exact_bb", nullptr, true, &config.budgets);
  EXPECT_TRUE(report.stable);
  EXPECT_TRUE(report.certified);
}

TEST(Dynamics, ExplicitBudgetsMatchImplicitOnLegacyStates) {
  // When budgets == out-degrees the explicit-caps path must reproduce the
  // legacy run bit for bit.
  Rng rng(314);
  const Digraph initial = small_instance(9, rng);
  DynamicsConfig legacy;
  legacy.version = CostVersion::Sum;
  DynamicsConfig explicit_caps = legacy;
  explicit_caps.budgets = initial.budgets();
  const DynamicsResult a = run_best_response_dynamics(initial, legacy);
  const DynamicsResult b = run_best_response_dynamics(initial, explicit_caps);
  EXPECT_EQ(a.graph, b.graph);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.converged, b.converged);
}

// ---------------------------------------------------------------------------
// Satellite: churn artifacts are byte-identical across kill/resume.

TEST(ChurnEngineArtifact, KillAndResumeIsByteIdentical) {
  const char* kSpec = R"({
    "name": "churn_probe", "task": "churn", "version": "sum",
    "budgets": {"family": "tree"}, "grid": {"n": [7, 9]},
    "seeds": {"begin": 0, "end": 5},
    "params": {"churn": {"events": 12, "checkpoint_every": 4, "mode": "respond",
                         "max_budget": 3}}
  })";
  const CampaignSpec campaign = parse_campaign_spec(kSpec);
  const auto dir = std::filesystem::path(::testing::TempDir()) / "bbng_churn_artifact";
  std::filesystem::create_directories(dir);
  const auto read_file = [](const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };

  RunnerConfig reference_cfg;
  reference_cfg.output_path = (dir / "reference.jsonl").string();
  reference_cfg.threads = 1;
  reference_cfg.checkpoint_every = 3;
  const RunReport full = run_campaign(campaign, kSpec, reference_cfg);
  ASSERT_TRUE(full.completed);
  const std::string reference = read_file(reference_cfg.output_path);
  // Every job must have passed its incremental-vs-from-scratch checkpoints.
  EXPECT_EQ(reference.find("\"checkpoints_identical\":false"), std::string::npos);
  EXPECT_NE(reference.find("\"checkpoints_identical\":true"), std::string::npos);

  RunnerConfig killed_cfg;
  killed_cfg.output_path = (dir / "killed.jsonl").string();
  killed_cfg.threads = 2;
  killed_cfg.checkpoint_every = 3;
  killed_cfg.halt_after = 4;
  const RunReport halted = run_campaign(campaign, kSpec, killed_cfg);
  ASSERT_FALSE(halted.completed);
  RunnerConfig resume_cfg = killed_cfg;
  resume_cfg.halt_after = 0;
  resume_cfg.threads = 3;
  const RunReport resumed = resume_campaign(campaign, kSpec, resume_cfg);
  ASSERT_TRUE(resumed.completed);
  EXPECT_EQ(read_file(resume_cfg.output_path), reference);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bbng
