// Unit tests for the graph and instance generators used across the suite.
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/connectivity.hpp"
#include "graph/tree.hpp"

namespace bbng {
namespace {

TEST(Generators, PathDigraphShape) {
  const Digraph g = path_digraph(5);
  EXPECT_EQ(g.num_arcs(), 4U);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_TRUE(g.has_arc(3, 4));
  EXPECT_EQ(g.out_degree(4), 0U);
  EXPECT_TRUE(is_tree(g.underlying()));
}

TEST(Generators, CycleDigraphShape) {
  const Digraph g = cycle_digraph(6);
  EXPECT_EQ(g.num_arcs(), 6U);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.out_degree(v), 1U);
  EXPECT_TRUE(is_connected(g.underlying()));
}

TEST(Generators, StarDigraphShape) {
  const Digraph g = star_digraph(7);
  EXPECT_EQ(g.out_degree(0), 6U);
  for (Vertex v = 1; v < 7; ++v) EXPECT_EQ(g.out_degree(v), 0U);
  EXPECT_TRUE(is_tree(g.underlying()));
}

TEST(Generators, RandomProfileRespectsBudgets) {
  Rng rng(1);
  const std::vector<std::uint32_t> budgets{3, 0, 1, 2, 1};
  for (int round = 0; round < 10; ++round) {
    const Digraph g = random_profile(budgets, rng);
    EXPECT_EQ(g.budgets(), budgets);
  }
}

TEST(Generators, RandomProfileRejectsOversizedBudget) {
  Rng rng(2);
  const std::vector<std::uint32_t> budgets{3, 0, 0};  // 3 ≥ n = 3
  EXPECT_THROW((void)random_profile(budgets, rng), std::invalid_argument);
}

TEST(Generators, RandomBudgetsSumAndBounds) {
  Rng rng(3);
  for (const std::uint64_t sigma : {0ULL, 9ULL, 20ULL, 50ULL}) {
    const auto b = random_budgets(10, sigma, rng);
    EXPECT_EQ(std::accumulate(b.begin(), b.end(), 0ULL), sigma);
    for (const auto bi : b) EXPECT_LT(bi, 10U);
  }
}

TEST(Generators, RandomTreeIsTreeBgInstance) {
  Rng rng(4);
  for (int round = 0; round < 10; ++round) {
    const Digraph g = random_tree_digraph(20, rng);
    EXPECT_EQ(g.num_arcs(), 19U);
    EXPECT_TRUE(is_tree(g.underlying()));
    const auto b = g.budgets();
    EXPECT_EQ(std::accumulate(b.begin(), b.end(), 0ULL), 19U);
  }
}

TEST(Generators, ErdosRenyiExtremes) {
  Rng rng(5);
  EXPECT_EQ(erdos_renyi(10, 0.0, rng).num_edges(), 0U);
  EXPECT_EQ(erdos_renyi(10, 1.0, rng).num_edges(), 45U);
}

TEST(Generators, ConnectedErdosRenyiIsConnected) {
  Rng rng(6);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(is_connected(connected_erdos_renyi(30, 0.02, rng)));
  }
}

TEST(Generators, GridShape) {
  const UGraph g = grid_graph(3, 4);
  EXPECT_EQ(g.num_vertices(), 12U);
  EXPECT_EQ(g.num_edges(), 3U * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CompleteGraphShape) {
  const UGraph g = complete_ugraph(6);
  EXPECT_EQ(g.num_edges(), 15U);
  EXPECT_TRUE(g.is_complete());
}

TEST(Orient, CycleGraphAllPositive) {
  const Digraph d = orient_with_positive_outdegree(cycle_ugraph(5));
  EXPECT_EQ(d.num_arcs(), 5U);
  for (Vertex v = 0; v < 5; ++v) EXPECT_GE(d.out_degree(v), 1U);
}

TEST(Orient, DenseGraphAllPositive) {
  Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    const UGraph g = connected_erdos_renyi(25, 0.15, rng);
    if (g.min_degree() < 2) continue;  // theorem needs a cycle per component
    const Digraph d = orient_with_positive_outdegree(g);
    EXPECT_EQ(d.num_arcs(), g.num_edges());
    for (Vertex v = 0; v < 25; ++v) {
      EXPECT_GE(d.out_degree(v), 1U) << "vertex " << v << " round " << round;
    }
    EXPECT_EQ(d.underlying(), g);
  }
}

TEST(Orient, TreeComponentLeavesRootBudgetless) {
  const Digraph d = orient_with_positive_outdegree(path_ugraph(4));
  EXPECT_EQ(d.num_arcs(), 3U);
  // Exactly one vertex (the root) has outdegree 0.
  int zero_out = 0;
  for (Vertex v = 0; v < 4; ++v) zero_out += (d.out_degree(v) == 0);
  EXPECT_EQ(zero_out, 1);
}

TEST(Orient, EachEdgeOrientedExactlyOnce) {
  Rng rng(8);
  const UGraph g = connected_erdos_renyi(15, 0.3, rng);
  const Digraph d = orient_with_positive_outdegree(g);
  EXPECT_EQ(d.num_arcs(), g.num_edges());
  EXPECT_EQ(d.brace_count(), 0U);
  EXPECT_EQ(d.underlying(), g);
}

TEST(Orient, MultiComponentGraph) {
  // Two disjoint cycles.
  UGraph g(8);
  for (Vertex v = 0; v < 4; ++v) g.add_edge(v, (v + 1) % 4);
  for (Vertex v = 0; v < 4; ++v) g.add_edge(4 + v, 4 + ((v + 1) % 4));
  const Digraph d = orient_with_positive_outdegree(g);
  for (Vertex v = 0; v < 8; ++v) EXPECT_EQ(d.out_degree(v), 1U);
}

}  // namespace
}  // namespace bbng
