// Randomised operation-sequence stress tests ("poor man's fuzzing"): apply
// long random add/remove/set sequences to the mutable graph types and check
// the class invariants against a naive shadow model after every step.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/digraph.hpp"
#include "graph/generators.hpp"
#include "graph/ugraph.hpp"
#include "util/rng.hpp"

namespace bbng {
namespace {

TEST(FuzzDigraph, ShadowModelAgreesOverLongOpSequences) {
  Rng rng(424242);
  const std::uint32_t n = 12;
  Digraph g(n);
  std::set<std::pair<Vertex, Vertex>> shadow;

  for (int step = 0; step < 4000; ++step) {
    const auto op = rng.next_below(3);
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const auto v = static_cast<Vertex>(rng.next_below(n));
    if (op == 0 && u != v && !shadow.count({u, v})) {
      g.add_arc(u, v);
      shadow.insert({u, v});
    } else if (op == 1 && shadow.count({u, v})) {
      g.remove_arc(u, v);
      shadow.erase({u, v});
    } else if (op == 2) {
      // Replace u's strategy with a random set of distinct heads.
      const auto b = static_cast<std::uint32_t>(rng.next_below(4));
      auto picks = rng.sample(n - 1, b);
      std::vector<Vertex> heads;
      for (const auto p : picks) heads.push_back(p >= u ? p + 1 : p);
      g.set_strategy(u, heads);
      for (auto it = shadow.begin(); it != shadow.end();) {
        it = (it->first == u) ? shadow.erase(it) : std::next(it);
      }
      for (const Vertex h : heads) shadow.insert({u, h});
    }

    // Invariants after every mutation.
    ASSERT_EQ(g.num_arcs(), shadow.size());
    if (step % 50 == 0) {  // full structural audit periodically
      for (Vertex a = 0; a < n; ++a) {
        for (Vertex b = 0; b < n; ++b) {
          if (a == b) continue;
          ASSERT_EQ(g.has_arc(a, b), shadow.count({a, b}) > 0)
              << "step " << step << " arc " << a << "->" << b;
        }
        // Adjacency stays sorted and duplicate-free.
        const auto nbrs = g.out_neighbors(a);
        for (std::size_t i = 1; i < nbrs.size(); ++i) ASSERT_LT(nbrs[i - 1], nbrs[i]);
      }
    }
  }
}

TEST(FuzzUGraph, ShadowModelAgreesOverLongOpSequences) {
  Rng rng(777);
  const std::uint32_t n = 10;
  UGraph g(n);
  std::set<std::pair<Vertex, Vertex>> shadow;  // normalised (min, max)
  const auto key = [](Vertex a, Vertex b) {
    return std::make_pair(std::min(a, b), std::max(a, b));
  };

  for (int step = 0; step < 4000; ++step) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const auto v = static_cast<Vertex>(rng.next_below(n));
    if (u == v) continue;
    if (rng.next_bool(0.55) && !shadow.count(key(u, v))) {
      g.add_edge(u, v);
      shadow.insert(key(u, v));
    } else if (shadow.count(key(u, v))) {
      g.remove_edge(v, u);  // removal from either side
      shadow.erase(key(u, v));
    }

    ASSERT_EQ(g.num_edges(), shadow.size());
    if (step % 50 == 0) {
      for (Vertex a = 0; a < n; ++a) {
        std::uint32_t degree = 0;
        for (const auto& e : shadow) degree += (e.first == a || e.second == a);
        ASSERT_EQ(g.degree(a), degree) << "step " << step;
        for (Vertex b = a + 1; b < n; ++b) {
          ASSERT_EQ(g.has_edge(a, b), shadow.count(key(a, b)) > 0);
        }
      }
    }
  }
}

TEST(FuzzDigraph, HashStableUnderRebuild) {
  Rng rng(5150);
  for (int round = 0; round < 20; ++round) {
    const auto budgets = random_budgets(9, 12, rng);
    const Digraph g = random_profile(budgets, rng);
    // Rebuild by inserting arcs in a different (shuffled) order.
    std::vector<std::pair<Vertex, Vertex>> arcs;
    for (Vertex u = 0; u < 9; ++u) {
      for (const Vertex v : g.out_neighbors(u)) arcs.emplace_back(u, v);
    }
    rng.shuffle(arcs);
    Digraph rebuilt(9);
    for (const auto& [u, v] : arcs) rebuilt.add_arc(u, v);
    EXPECT_EQ(rebuilt.hash(), g.hash());
    EXPECT_TRUE(rebuilt == g);
  }
}

}  // namespace
}  // namespace bbng
