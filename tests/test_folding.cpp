// Unit tests for Section 6: weighted games, weak equilibria, leaf folding.
#include "game/folding.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "game/dynamics.hpp"
#include "game/equilibrium.hpp"
#include "graph/generators.hpp"
#include "graph/tree.hpp"

namespace bbng {
namespace {

TEST(WeightedGame, UniformEmbedsUnweighted) {
  const WeightedGame game = WeightedGame::uniform(path_digraph(4));
  EXPECT_EQ(game.total_weight(), 4U);
  EXPECT_EQ(weighted_cost(game, 0), 1U + 2 + 3);
  EXPECT_EQ(weighted_cost(game, 1), 1U + 1 + 2);
}

TEST(WeightedGame, WeightsScaleDistances) {
  WeightedGame game = WeightedGame::uniform(path_digraph(3));
  game.weight = {1, 10, 100};
  EXPECT_EQ(weighted_cost(game, 0), 10U + 200);
  EXPECT_EQ(weighted_cost(game, 2), 100U * 0 + 10 + 2);
}

TEST(WeightedGame, DisconnectedChargesCinfTimesWeight) {
  Digraph g(3);
  g.add_arc(0, 1);
  WeightedGame game = WeightedGame::uniform(std::move(g));
  game.weight = {1, 1, 5};
  EXPECT_EQ(weighted_cost(game, 0), 1U + 5 * 9);  // Cinf = 9
}

TEST(PoorRichLeaves, Classification) {
  // 0→1→2, 3→1: leaves are 0 (rich: owns its arc), 2 (poor: receives),
  // 3 (rich).
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(3, 1);
  const WeightedGame game = WeightedGame::uniform(std::move(g));
  EXPECT_EQ(poor_leaves(game), (std::vector<Vertex>{2}));
  EXPECT_EQ(rich_leaves(game), (std::vector<Vertex>{0, 3}));
}

TEST(PoorRichLeaves, BraceEndpointIsNotLeaf) {
  Digraph g(2);
  g.add_arc(0, 1);
  g.add_arc(1, 0);
  const WeightedGame game = WeightedGame::uniform(std::move(g));
  EXPECT_TRUE(poor_leaves(game).empty());
  EXPECT_TRUE(rich_leaves(game).empty());
}

TEST(FoldPoorLeaf, WeightMovesToSupport) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);  // 2 is a poor leaf supported by 1
  WeightedGame game = WeightedGame::uniform(std::move(g));
  game.weight = {1, 2, 7};
  const FoldResult fold = fold_poor_leaf(game, 2);
  EXPECT_EQ(fold.game.num_vertices(), 2U);
  EXPECT_EQ(fold.game.total_weight(), 10U);
  EXPECT_EQ(fold.game.weight[fold.folded_into], 9U);  // 2 + 7
  EXPECT_EQ(fold.old_to_new[2], FoldResult::kFolded);
  EXPECT_EQ(fold.game.graph.num_arcs(), 1U);
}

TEST(FoldPoorLeaf, RejectsNonLeaf) {
  const WeightedGame game = WeightedGame::uniform(path_digraph(4));
  EXPECT_THROW((void)fold_poor_leaf(game, 1), std::invalid_argument);  // degree 2
  EXPECT_THROW((void)fold_poor_leaf(game, 0), std::invalid_argument);  // rich leaf
}

TEST(FoldAllPoorLeaves, StarCollapsesToSingleton) {
  const WeightedGame game = WeightedGame::uniform(star_digraph(6));
  std::uint64_t folds = 0;
  const WeightedGame folded = fold_all_poor_leaves(game, &folds);
  EXPECT_EQ(folds, 5U);
  EXPECT_EQ(folded.num_vertices(), 1U);
  EXPECT_EQ(folded.total_weight(), 6U);
}

TEST(FoldAllPoorLeaves, PreservesTotalWeight) {
  Rng rng(501);
  for (int round = 0; round < 10; ++round) {
    const WeightedGame game = WeightedGame::uniform(random_tree_digraph(20, rng));
    const WeightedGame folded = fold_all_poor_leaves(game);
    EXPECT_EQ(folded.total_weight(), 20U);
    EXPECT_TRUE(poor_leaves(folded).empty());
  }
}

TEST(WeakEquilibrium, NashEquilibriumIsWeakEquilibrium) {
  // Run unit-budget dynamics to a Nash equilibrium; it must be weakly stable
  // under the weighted machinery with uniform weights.
  Rng rng(502);
  const std::vector<std::uint32_t> budgets(8, 1);
  const Digraph initial = random_profile(budgets, rng);
  DynamicsConfig config;
  config.version = CostVersion::Sum;
  config.max_rounds = 200;
  const DynamicsResult result = run_best_response_dynamics(initial, config);
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(is_weak_equilibrium(WeightedGame::uniform(result.graph)));
}

TEST(WeakEquilibrium, PathIsNotWeaklyStable) {
  EXPECT_FALSE(is_weak_equilibrium(WeightedGame::uniform(path_digraph(7))));
}

TEST(WeakEquilibrium, FoldingPreservesWeakStability) {
  // Section 6: folding a poor leaf of a weak equilibrium graph yields a
  // weak equilibrium graph. Validate on SUM tree equilibria from dynamics.
  Rng rng(503);
  int validated = 0;
  for (int round = 0; round < 6 && validated < 3; ++round) {
    const Digraph initial = random_tree_digraph(9, rng);
    DynamicsConfig config;
    config.version = CostVersion::Sum;
    config.max_rounds = 300;
    config.seed = static_cast<std::uint64_t>(round + 1);
    const DynamicsResult result = run_best_response_dynamics(initial, config);
    if (!result.converged) continue;
    WeightedGame game = WeightedGame::uniform(result.graph);
    ASSERT_TRUE(is_weak_equilibrium(game));
    auto leaves = poor_leaves(game);
    while (!leaves.empty()) {
      game = fold_poor_leaf(game, leaves.front()).game;
      EXPECT_TRUE(is_weak_equilibrium(game));
      leaves = poor_leaves(game);
    }
    ++validated;
  }
  EXPECT_GE(validated, 1);
}

TEST(Lemma62, SubtreeHeightBoundOnFoldedEquilibria) {
  // On a weak-equilibrium tree rooted anywhere, subtrees hanging below the
  // root satisfy height ≤ 1 + log2(weight) (Lemma 6.2 with T = whole tree).
  Rng rng(504);
  for (int round = 0; round < 5; ++round) {
    const Digraph initial = random_tree_digraph(12, rng);
    DynamicsConfig config;
    config.version = CostVersion::Sum;
    config.max_rounds = 300;
    const DynamicsResult result = run_best_response_dynamics(initial, config);
    if (!result.converged) continue;
    const WeightedGame game = WeightedGame::uniform(result.graph);
    const UGraph u = game.graph.underlying();
    if (!is_tree(u)) continue;
    const RootedTree t = root_tree(u, 0);
    const double bound = 1.0 + std::log2(static_cast<double>(game.total_weight()));
    EXPECT_LE(static_cast<double>(t.height()), bound + 1.0)
        << "Lemma 6.2 height bound violated";
  }
}

TEST(Lemma64, RichLeavesWithinDistanceTwoOnWeakEquilibria) {
  Rng rng(505);
  for (int round = 0; round < 6; ++round) {
    const std::vector<std::uint32_t> budgets(9, 1);
    const Digraph initial = random_profile(budgets, rng);
    DynamicsConfig config;
    config.version = CostVersion::Sum;
    config.max_rounds = 300;
    config.seed = static_cast<std::uint64_t>(round);
    const DynamicsResult result = run_best_response_dynamics(initial, config);
    if (!result.converged) continue;
    const WeightedGame game = WeightedGame::uniform(result.graph);
    ASSERT_TRUE(is_weak_equilibrium(game));
    EXPECT_LE(max_rich_leaf_distance(game), 2U);
  }
}

}  // namespace
}  // namespace bbng
