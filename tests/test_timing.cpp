// Timing-telemetry tests: the 1-2-5 bucket ladder and quantile
// interpolation, per-thread histogram shards merging (and surviving thread
// exit) like the counter registry, the runtime kill switch, gauges and the
// background GaugeSampler, ScopedTimer feeding both a histogram and a
// trace span, and the Prometheus text exposition — validated by a small
// in-test parser of the exposition format, so a formatting regression
// fails here before a real scraper ever sees it.
#include "obs/timing.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/procstat.hpp"

namespace bbng {
namespace {

obs::HistogramSnapshot find_histogram(const std::string& name) {
  for (const obs::HistogramSnapshot& hist : obs::histogram_snapshot()) {
    if (hist.name == name) return hist;
  }
  return {};
}

obs::GaugeSnapshot find_gauge(const std::string& name) {
  for (const obs::GaugeSnapshot& gauge : obs::gauge_snapshot()) {
    if (gauge.name == name) return gauge;
  }
  return {};
}

TEST(HistogramBuckets, BoundariesAreA125MicrosecondLadder) {
  const auto& boundaries = obs::histogram_boundaries_us();
  ASSERT_EQ(boundaries.size(), obs::kHistogramBoundaryCount);
  EXPECT_EQ(boundaries.front(), 1u);
  EXPECT_EQ(boundaries.back(), 100'000'000u);  // 100 s
  for (std::size_t i = 1; i < boundaries.size(); ++i) {
    EXPECT_LT(boundaries[i - 1], boundaries[i]);
    // A 1-2-5 ladder: each boundary is 2x or 2.5x its predecessor.
    const std::uint64_t ratio10 = boundaries[i] * 10 / boundaries[i - 1];
    EXPECT_TRUE(ratio10 == 20 || ratio10 == 25) << boundaries[i];
  }
}

TEST(HistogramBuckets, IndexingUsesLeSemantics) {
  EXPECT_EQ(obs::histogram_bucket_index(0), 0u);
  EXPECT_EQ(obs::histogram_bucket_index(1), 0u);  // value <= boundary
  EXPECT_EQ(obs::histogram_bucket_index(2), 1u);
  EXPECT_EQ(obs::histogram_bucket_index(3), 2u);
  EXPECT_EQ(obs::histogram_bucket_index(5), 2u);
  EXPECT_EQ(obs::histogram_bucket_index(6), 3u);
  EXPECT_EQ(obs::histogram_bucket_index(100'000'000), obs::kHistogramBoundaryCount - 1);
  // Beyond the last boundary: the +Inf overflow bucket.
  EXPECT_EQ(obs::histogram_bucket_index(100'000'001), obs::kHistogramBoundaryCount);
}

TEST(HistogramSnapshot, QuantilesInterpolateInsideTheContainingBucket) {
  obs::HistogramSnapshot snapshot;
  EXPECT_EQ(snapshot.quantile_us(0.5), 0.0) << "empty histogram";

  // 100 samples, all in the (5, 10] bucket, true max 9.
  snapshot.count = 100;
  snapshot.max_us = 9;
  snapshot.sum_us = 900;
  snapshot.buckets[obs::histogram_bucket_index(9)] = 100;
  EXPECT_DOUBLE_EQ(snapshot.quantile_us(0.5), 7.5);  // 5 + 5 * 50/100
  EXPECT_DOUBLE_EQ(snapshot.quantile_us(0.9), 9.0);  // 9.5 interpolated, clamped to max
  EXPECT_DOUBLE_EQ(snapshot.quantile_us(1.0), 9.0);

  // A sample in the overflow bucket reports the exact max.
  obs::HistogramSnapshot overflow;
  overflow.count = 1;
  overflow.max_us = 250'000'000;
  overflow.buckets[obs::kHistogramBoundaryCount] = 1;
  EXPECT_DOUBLE_EQ(overflow.quantile_us(0.5), 250'000'000.0);
}

TEST(TimingRegistry, RecordsMergeAcrossThreadsAndSurviveExit) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with BBNG_OBS=OFF";
  const obs::HistogramId id = obs::register_histogram("test.hist.merge");
  EXPECT_EQ(obs::register_histogram("test.hist.merge"), id) << "interning is idempotent";
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([id, t] {
      for (int i = 0; i < 100; ++i) obs::record_us(id, 1000);
      if (t == 0) obs::record_us(id, 7'000'000);  // one outlier pins the max
    });
  }
  for (auto& thread : threads) thread.join();
  // The threads exited: their shards must have folded into retained totals.
  const obs::HistogramSnapshot merged = find_histogram("test.hist.merge");
  EXPECT_EQ(merged.count, 401u);
  EXPECT_EQ(merged.sum_us, 400u * 1000 + 7'000'000);
  EXPECT_EQ(merged.max_us, 7'000'000u);
  EXPECT_EQ(merged.buckets[obs::histogram_bucket_index(1000)], 400u);
  EXPECT_EQ(merged.buckets[obs::histogram_bucket_index(7'000'000)], 1u);

  std::string previous;
  for (const obs::HistogramSnapshot& hist : obs::histogram_snapshot()) {
    EXPECT_LT(previous, hist.name) << "snapshot must be name-sorted";
    previous = hist.name;
  }
}

TEST(TimingRegistry, KillSwitchStopsRecording) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with BBNG_OBS=OFF";
  const obs::HistogramId id = obs::register_histogram("test.hist.kill_switch");
  obs::set_enabled(false);
  obs::record_us(id, 5);
  obs::set_enabled(true);
  EXPECT_EQ(find_histogram("test.hist.kill_switch").count, 0u);
  obs::record_us(id, 5);
  EXPECT_EQ(find_histogram("test.hist.kill_switch").count, 1u);
}

TEST(Gauges, TrackLastMinMaxAndSampleCount) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with BBNG_OBS=OFF";
  const obs::GaugeId id = obs::register_gauge("test.gauge.basic");
  EXPECT_EQ(obs::register_gauge("test.gauge.basic"), id);
  EXPECT_EQ(find_gauge("test.gauge.basic").samples, 0u)
      << "registration alone is observable with zero samples";
  obs::gauge_set(id, 5.0);
  obs::gauge_set(id, 2.0);
  obs::gauge_set(id, 9.0);
  const obs::GaugeSnapshot gauge = find_gauge("test.gauge.basic");
  EXPECT_DOUBLE_EQ(gauge.last, 9.0);
  EXPECT_DOUBLE_EQ(gauge.min, 2.0);
  EXPECT_DOUBLE_EQ(gauge.max, 9.0);
  EXPECT_EQ(gauge.samples, 3u);
}

TEST(Gauges, SamplerRecordsMemoryAndRates) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with BBNG_OBS=OFF";
  const std::uint64_t before = find_gauge("mem.vm_rss_kb").samples;
  {
    obs::GaugeSampler sampler(0.01);
    sampler.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }  // destructor stops (idempotent) and takes the final sample
  const obs::GaugeSnapshot rss = find_gauge("mem.vm_rss_kb");
  EXPECT_GE(rss.samples, before + 2u) << "baseline + at least one tick";
  EXPECT_GT(rss.last, 0.0);
  EXPECT_GT(find_gauge("mem.vm_hwm_kb").last, 0.0);
  EXPECT_GE(find_gauge("mem.vm_hwm_kb").last, rss.last)
      << "the high-water mark bounds current RSS";
  EXPECT_GE(find_gauge("rate.solver.solves_per_sec").samples, 1u);
  // The sampler reads the same /proc parser the sidecar uses.
  EXPECT_GT(peak_rss_kb(), 0u);
  EXPECT_GT(current_rss_kb(), 0u);
  EXPECT_GE(peak_rss_kb(), current_rss_kb());
}

TEST(ScopedTimer, RecordsIntoTheHistogramAndOpensASpan) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with BBNG_OBS=OFF";
  const obs::HistogramId id = obs::register_histogram("test.hist.scoped");
  obs::trace::begin();
  {
    obs::ScopedTimer timer(id, "test.scoped.span");
    timer.arg("label", std::string_view{"value"});
    timer.arg("number", std::uint64_t{3});
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    obs::ScopedTimer histogram_only(id);  // no span name → no trace event
  }
  const std::string json = obs::trace::end_json();
  EXPECT_NE(json.find("test.scoped.span"), std::string::npos);
  EXPECT_EQ(obs::validate_trace_json(parse_json(json)), 1u)
      << "the span-less timer must not emit a trace event";

  const obs::HistogramSnapshot hist = find_histogram("test.hist.scoped");
  EXPECT_EQ(hist.count, 2u);
  EXPECT_GE(hist.max_us, 2000u) << "the 2 ms sleep must be visible";
}

// ---------------------------------------------------------------------------
// Prometheus text exposition. The parser below accepts the subset of the
// format we emit: `# TYPE name kind` comments and `name[{labels}] value`
// samples. It checks what a real scraper would reject.

struct PromDoc {
  std::map<std::string, std::string> types;                // family → kind
  std::vector<std::pair<std::string, std::string>> samples;  // name{labels} → value
};

bool prom_name_ok(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!legal) return false;
  }
  return !(name[0] >= '0' && name[0] <= '9');
}

PromDoc parse_prometheus(const std::string& text, std::vector<std::string>& errors) {
  PromDoc doc;
  std::istringstream stream(text);
  std::string line;
  std::size_t number = 0;
  while (std::getline(stream, line)) {
    ++number;
    const std::string where = "line " + std::to_string(number) + ": " + line;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream fields(line);
      std::string hash, keyword, name, kind;
      fields >> hash >> keyword;
      if (keyword != "TYPE") continue;  // free-form comment
      fields >> name >> kind;
      if (!prom_name_ok(name)) errors.push_back("bad TYPE name: " + where);
      if (kind != "counter" && kind != "gauge" && kind != "histogram") {
        errors.push_back("bad TYPE kind: " + where);
      }
      if (doc.types.count(name) != 0) errors.push_back("duplicate TYPE: " + where);
      doc.types[name] = kind;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      errors.push_back("sample without value: " + where);
      continue;
    }
    std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    std::string labels;
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      if (name.back() != '}') {
        errors.push_back("unterminated label set: " + where);
        continue;
      }
      labels = name.substr(brace + 1, name.size() - brace - 2);
      name = name.substr(0, brace);
    }
    if (!prom_name_ok(name)) errors.push_back("bad sample name: " + where);
    char* end = nullptr;
    static_cast<void>(std::strtod(value.c_str(), &end));
    if (end == value.c_str() || *end != '\0') errors.push_back("bad value: " + where);
    doc.samples.emplace_back(name, labels);
  }
  return doc;
}

TEST(Exposition, EmitsParsableBbngPrefixedPrometheusText) {
  std::ostringstream os;
  if (obs::kCompiledIn) {
    const obs::HistogramId hist = obs::register_histogram("test.expo.latency");
    obs::record_us(hist, 3);
    obs::record_us(hist, 40);
    obs::record_us(hist, 300'000'000);  // overflow bucket
    const obs::GaugeId gauge = obs::register_gauge("test.expo.gauge");
    obs::gauge_set(gauge, 1.5);
    obs::add(obs::register_counter("test.expo.count"), 7);
  }
  obs::write_exposition(os);
  const std::string text = os.str();

  std::vector<std::string> errors;
  const PromDoc doc = parse_prometheus(text, errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  for (const auto& [name, labels] : doc.samples) {
    EXPECT_EQ(name.rfind("bbng_", 0), 0u) << name;
  }
  for (const auto& [name, kind] : doc.types) {
    if (kind == "counter") {
      EXPECT_TRUE(name.size() > 6 && name.rfind("_total") == name.size() - 6) << name;
    }
  }

  if (!obs::kCompiledIn) {
    EXPECT_TRUE(doc.samples.empty()) << "OFF build emits a comment-only document";
    EXPECT_NE(text.find("BBNG_OBS=OFF"), std::string::npos);
    return;
  }

  // The dotted names arrived snake_cased with the kind-specific suffixes.
  EXPECT_EQ(doc.types.at("bbng_test_expo_count_total"), "counter");
  EXPECT_EQ(doc.types.at("bbng_test_expo_gauge"), "gauge");
  EXPECT_EQ(doc.types.at("bbng_test_expo_latency_seconds"), "histogram");

  // Histogram contract: cumulative le-buckets ending at +Inf == _count.
  std::uint64_t previous = 0;
  std::uint64_t inf_value = 0;
  std::uint64_t count_value = 0;
  bool saw_inf = false;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.rfind("bbng_test_expo_latency_seconds_bucket{le=\"", 0) == 0) {
      const std::uint64_t value = std::strtoull(line.substr(line.rfind(' ')).c_str(), nullptr, 10);
      EXPECT_GE(value, previous) << "buckets must be cumulative: " << line;
      previous = value;
      if (line.find("le=\"+Inf\"") != std::string::npos) {
        saw_inf = true;
        inf_value = value;
      }
    }
    if (line.rfind("bbng_test_expo_latency_seconds_count ", 0) == 0) {
      count_value = std::strtoull(line.substr(line.rfind(' ')).c_str(), nullptr, 10);
    }
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(inf_value, count_value);
  EXPECT_EQ(count_value, 3u);
}

TEST(Exposition, FileWriterIsAtomicAndReparsable) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "bbng_expo_test.prom").string();
  obs::write_exposition_file(path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::vector<std::string> errors;
  static_cast<void>(parse_prometheus(buffer.str(), errors));
  EXPECT_TRUE(errors.empty()) << errors.front();
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp")) << "tmp must be renamed away";
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace bbng
