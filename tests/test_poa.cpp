// Unit tests for OPT diameter bounds and price-of-anarchy estimates.
#include "constructions/poa.hpp"

#include <gtest/gtest.h>

#include "constructions/spider.hpp"
#include "graph/generators.hpp"

namespace bbng {
namespace {

TEST(OptBounds, DisconnectedInstanceIsCinf) {
  const BudgetGame game({0, 0, 0, 1});
  const OptBounds bounds = opt_diameter_bounds(game);
  EXPECT_EQ(bounds.lower, 16U);
  EXPECT_EQ(bounds.upper, 16U);
}

TEST(OptBounds, ConnectedInstanceBracketsSmallConstant) {
  const BudgetGame game({1, 1, 1, 1, 1, 1});
  const OptBounds bounds = opt_diameter_bounds(game);
  EXPECT_EQ(bounds.lower, 2U);  // σ = 6 < 15 pairs
  EXPECT_LE(bounds.upper, 4U);
  EXPECT_GE(bounds.upper, bounds.lower);
}

TEST(OptBounds, RichInstanceCanBeComplete) {
  const BudgetGame game({2, 2, 2});  // σ = 6 ≥ C(3,2) = 3
  EXPECT_EQ(opt_diameter_bounds(game).lower, 1U);
}

TEST(OptBounds, SingletonGame) {
  const BudgetGame game({0});
  const OptBounds bounds = opt_diameter_bounds(game);
  EXPECT_EQ(bounds.lower, 0U);
  EXPECT_EQ(bounds.upper, 0U);
}

TEST(PoaEstimate, SpiderScalesLinearly) {
  const std::uint32_t k = 12;
  const Digraph spider = spider_digraph(k);
  const BudgetGame game(spider.budgets());
  const PoaEstimate estimate = poa_estimate(game, spider);
  EXPECT_EQ(estimate.equilibrium_diameter, 2 * k);
  EXPECT_LE(estimate.opt.upper, 4U);
  EXPECT_GE(estimate.ratio_lower, static_cast<double>(2 * k) / 4.0);
  EXPECT_GE(estimate.ratio_upper, estimate.ratio_lower);
}

TEST(PoaEstimate, RejectsNonRealization) {
  const BudgetGame game({1, 1, 1});
  const Digraph wrong = star_digraph(3);  // budgets (2,0,0)
  EXPECT_THROW((void)poa_estimate(game, wrong), std::invalid_argument);
}

TEST(PoaEstimate, RandomInstancesBracketConsistently) {
  Rng rng(801);
  for (int round = 0; round < 8; ++round) {
    const std::uint32_t n = 5 + static_cast<std::uint32_t>(rng.next_below(6));
    const auto budgets = random_budgets(n, n + rng.next_below(n), rng);
    const BudgetGame game(budgets);
    const Digraph g = random_profile(budgets, rng);
    const PoaEstimate estimate = poa_estimate(game, g);
    EXPECT_LE(estimate.ratio_lower, estimate.ratio_upper + 1e-12);
    EXPECT_LE(estimate.opt.lower, estimate.opt.upper);
  }
}

}  // namespace
}  // namespace bbng
