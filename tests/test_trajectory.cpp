// Unit tests for social-cost trajectory recording in dynamics runs.
#include "game/dynamics.hpp"

#include <gtest/gtest.h>

#include "game/cost.hpp"
#include "graph/generators.hpp"

namespace bbng {
namespace {

TEST(Trajectory, RecordedWhenRequested) {
  const Digraph initial = path_digraph(8);
  DynamicsConfig config;
  config.version = CostVersion::Max;
  config.record_trajectory = true;
  const DynamicsResult result = run_best_response_dynamics(initial, config);
  ASSERT_TRUE(result.converged);
  // initial state + one entry per executed round
  EXPECT_EQ(result.trajectory.size(), result.rounds + 1);
  EXPECT_EQ(result.trajectory.front(), social_cost(initial.underlying()));
  EXPECT_EQ(result.trajectory.back(), social_cost(result.graph.underlying()));
}

TEST(Trajectory, EmptyWhenDisabled) {
  const Digraph initial = path_digraph(6);
  DynamicsConfig config;
  config.version = CostVersion::Sum;
  const DynamicsResult result = run_best_response_dynamics(initial, config);
  EXPECT_TRUE(result.trajectory.empty());
}

TEST(Trajectory, DisconnectedStartShowsCinfThenDrops) {
  // Unit-budget game from a deliberately disconnected start: the first
  // trajectory entry is n², later entries are real diameters.
  Digraph initial(6);
  initial.add_arc(0, 1);
  initial.add_arc(1, 0);
  initial.add_arc(2, 3);
  initial.add_arc(3, 2);
  initial.add_arc(4, 5);
  initial.add_arc(5, 4);
  DynamicsConfig config;
  config.version = CostVersion::Sum;
  config.record_trajectory = true;
  const DynamicsResult result = run_best_response_dynamics(initial, config);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.trajectory.front(), 36U);
  EXPECT_LT(result.trajectory.back(), 6U);
}

TEST(Trajectory, NonIncreasingOnUnitBudgetRuns) {
  // Not guaranteed in general (players optimise selfishly, not socially),
  // but the final value can never exceed Cinf and must equal the final
  // diameter; spot-check internal consistency on random runs.
  Rng rng(55);
  for (int round = 0; round < 5; ++round) {
    const std::vector<std::uint32_t> budgets(9, 1);
    const Digraph initial = random_profile(budgets, rng);
    DynamicsConfig config;
    config.version = CostVersion::Max;
    config.record_trajectory = true;
    config.seed = static_cast<std::uint64_t>(round);
    const DynamicsResult result = run_best_response_dynamics(initial, config);
    if (!result.converged) continue;
    for (const auto cost : result.trajectory) EXPECT_LE(cost, 81U);
    EXPECT_EQ(result.trajectory.back(), social_cost(result.graph.underlying()));
  }
}

}  // namespace
}  // namespace bbng
