// Cross-module parameterized property sweeps — medium-size instances where
// exact Nash verification is out of reach but the polynomial certificates
// (realization validity, swap stability, structural bounds) must hold.
#include <gtest/gtest.h>

#include <cmath>

#include "constructions/equilibria.hpp"
#include "constructions/shift_graph.hpp"
#include "constructions/spider.hpp"
#include "game/equilibrium.hpp"
#include "game/strategy_eval.hpp"
#include "game/cost.hpp"
#include "graph/connectivity.hpp"
#include "graph/distances.hpp"
#include "graph/generators.hpp"
#include "graph/tree.hpp"

namespace bbng {
namespace {

// ------------------------------------------------ Theorem 2.3 at scale
class ConstructionSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double, int>> {};

TEST_P(ConstructionSweep, ConstructedGraphIsSwapStableRealization) {
  const auto [n, sigma_factor, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + n);
  const auto sigma = static_cast<std::uint64_t>(sigma_factor * n);
  const auto budgets = random_budgets(n, std::min<std::uint64_t>(sigma, n * (n - 1)), rng);
  const BudgetGame game(budgets);
  const Digraph g = construct_equilibrium(game);

  ASSERT_TRUE(game.is_realization(g));
  EXPECT_EQ(is_connected(g.underlying()), game.can_connect());
  if (game.can_connect()) {
    EXPECT_LE(diameter(g.underlying()), 4U);
  }
  // Swap stability is a necessary condition for Nash and is polynomial.
  EXPECT_TRUE(verify_swap_equilibrium(g, CostVersion::Sum).stable);
  EXPECT_TRUE(verify_swap_equilibrium(g, CostVersion::Max).stable);
}

INSTANTIATE_TEST_SUITE_P(MediumInstances, ConstructionSweep,
                         ::testing::Combine(::testing::Values(20U, 40U, 70U),
                                            ::testing::Values(0.5, 1.0, 1.7),
                                            ::testing::Values(1, 2)));

// ------------------------------------------------ evaluator ≡ reference
class EvaluatorSweep : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(EvaluatorSweep, EvaluatorMatchesRebuildReference) {
  const auto [n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 104729 + n);
  const auto budgets = random_budgets(n, 2ULL * n, rng);
  const Digraph g = random_profile(budgets, rng);
  for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
    const Vertex u = static_cast<Vertex>(rng.next_below(n));
    const StrategyEvaluator eval(g, u, version);
    StrategyEvaluator::Scratch scratch(n);
    for (int trial = 0; trial < 8; ++trial) {
      auto picks = rng.sample(n - 1, g.out_degree(u));
      std::vector<Vertex> strategy;
      for (const auto p : picks) strategy.push_back(p >= u ? p + 1 : p);
      Digraph copy = g;
      copy.set_strategy(u, strategy);
      EXPECT_EQ(eval.evaluate(strategy, scratch), vertex_cost(copy, u, version))
          << "n=" << n << " " << to_string(version);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EvaluatorSweep,
                         ::testing::Combine(::testing::Values(16U, 33U, 64U, 120U),
                                            ::testing::Values(1, 2, 3)));

// ------------------------------------------------ spider family
class SpiderSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SpiderSweep, SpiderInvariants) {
  const std::uint32_t k = GetParam();
  const Digraph g = spider_digraph(k);
  EXPECT_EQ(g.num_vertices(), 3 * k + 1);
  EXPECT_TRUE(is_tree(g.underlying()));
  EXPECT_EQ(tree_diameter(g.underlying()), 2 * k);
  EXPECT_TRUE(verify_swap_equilibrium(g, CostVersion::Max).stable);
  EXPECT_EQ(g.brace_count(), 0U);
}

INSTANTIATE_TEST_SUITE_P(Legs, SpiderSweep, ::testing::Values(1U, 2U, 3U, 5U, 9U, 17U, 33U));

// ------------------------------------------------ shift-graph family
class ShiftSweep : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(ShiftSweep, ShiftGraphInvariants) {
  const auto [t, k] = GetParam();
  const UGraph g = shift_graph(t, k);
  std::uint64_t n = 1;
  for (std::uint32_t i = 0; i < k; ++i) n *= t;
  EXPECT_EQ(g.num_vertices(), n);
  EXPECT_GE(g.min_degree(), t - 1);
  EXPECT_LE(g.max_degree(), 2 * t);
  EXPECT_EQ(diameter(g), k);
  if (g.min_degree() >= 2) {
    const Digraph oriented = shift_graph_realization(t, k);
    for (Vertex v = 0; v < oriented.num_vertices(); ++v) {
      ASSERT_GE(oriented.out_degree(v), 1U);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Params, ShiftSweep,
                         ::testing::Values(std::tuple{3U, 2U}, std::tuple{4U, 2U},
                                           std::tuple{5U, 2U}, std::tuple{6U, 2U},
                                           std::tuple{8U, 2U}, std::tuple{3U, 3U},
                                           std::tuple{4U, 3U}, std::tuple{5U, 3U},
                                           std::tuple{3U, 4U}));

// ------------------------------------------------ Lemma 3.1 via construction
class ConnectivityThresholdSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ConnectivityThresholdSweep, SigmaAtThresholdYieldsTrees) {
  const std::uint32_t n = GetParam();
  Rng rng(n);
  const auto budgets = random_budgets(n, n - 1, rng);  // exactly the threshold
  const BudgetGame game(budgets);
  ASSERT_TRUE(game.is_tree_instance());
  const Digraph g = construct_equilibrium(game);
  // σ = n−1 and Nash ⇒ tree (Section 3 preamble).
  EXPECT_TRUE(is_tree(g.underlying()));
}

INSTANTIATE_TEST_SUITE_P(Threshold, ConnectivityThresholdSweep,
                         ::testing::Values(5U, 9U, 17U, 33U, 65U));

}  // namespace
}  // namespace bbng
