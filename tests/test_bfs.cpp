// Unit tests for the BFS primitives and the reusable BfsRunner scratch.
#include "graph/bfs.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace bbng {
namespace {

TEST(Bfs, PathDistances) {
  const UGraph g = path_ugraph(5);
  const auto d = bfs_distances(g, 0);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Bfs, CycleDistances) {
  const UGraph g = cycle_ugraph(6);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[0], 0U);
  EXPECT_EQ(d[1], 1U);
  EXPECT_EQ(d[2], 2U);
  EXPECT_EQ(d[3], 3U);
  EXPECT_EQ(d[4], 2U);
  EXPECT_EQ(d[5], 1U);
}

TEST(Bfs, DisconnectedMarksUnreachable) {
  UGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1U);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Bfs, RunnerStatsOnPath) {
  const UGraph g = path_ugraph(4);
  BfsRunner runner(4);
  runner.run(g, 0);
  EXPECT_EQ(runner.reached(), 4U);
  EXPECT_EQ(runner.max_dist(), 3U);
  EXPECT_EQ(runner.sum_dist(), 0U + 1 + 2 + 3);
}

TEST(Bfs, RunnerStatsDisconnected) {
  UGraph g(5);
  g.add_edge(0, 1);
  BfsRunner runner(5);
  runner.run(g, 0);
  EXPECT_EQ(runner.reached(), 2U);
  EXPECT_EQ(runner.max_dist(), 1U);
  EXPECT_EQ(runner.sum_dist(), 1U);
}

TEST(Bfs, RunnerIsReusable) {
  const UGraph g = path_ugraph(6);
  BfsRunner runner(6);
  runner.run(g, 0);
  EXPECT_EQ(runner.max_dist(), 5U);
  runner.run(g, 3);
  EXPECT_EQ(runner.max_dist(), 3U);
  EXPECT_EQ(runner.dist(0), 3U);
  EXPECT_EQ(runner.dist(5), 2U);
}

TEST(Bfs, MultiSourceTakesMinimum) {
  const UGraph g = path_ugraph(9);
  const Vertex sources[] = {0, 8};
  const auto d = bfs_distances_multi(g, sources);
  EXPECT_EQ(d[0], 0U);
  EXPECT_EQ(d[4], 4U);
  EXPECT_EQ(d[6], 2U);
  EXPECT_EQ(d[8], 0U);
}

TEST(Bfs, MultiSourceDuplicatesHarmless) {
  const UGraph g = path_ugraph(4);
  const Vertex sources[] = {1, 1, 1};
  const auto d = bfs_distances_multi(g, sources);
  EXPECT_EQ(d[1], 0U);
  EXPECT_EQ(d[3], 2U);
}

TEST(Bfs, BoundedStopsAtRadius) {
  const UGraph g = path_ugraph(10);
  BfsRunner runner(10);
  runner.run_bounded(g, 0, 3);
  EXPECT_EQ(runner.dist(3), 3U);
  EXPECT_EQ(runner.dist(4), kUnreachable);
  EXPECT_EQ(runner.reached(), 4U);
}

TEST(Bfs, BoundedRadiusZeroReachesOnlySource) {
  const UGraph g = path_ugraph(5);
  BfsRunner runner(5);
  runner.run_bounded(g, 2, 0);
  EXPECT_EQ(runner.reached(), 1U);
  EXPECT_EQ(runner.dist(2), 0U);
  EXPECT_EQ(runner.dist(1), kUnreachable);
}

TEST(Bfs, GridDistancesAreManhattanNearSource) {
  const UGraph g = grid_graph(4, 4);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[5], 2U);   // (1,1)
  EXPECT_EQ(d[15], 6U);  // (3,3)
}

}  // namespace
}  // namespace bbng
