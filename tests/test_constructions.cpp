// Theorem 2.3 construction: for any budget vector, the constructed graph is
// a realization and an exact Nash equilibrium in BOTH versions.
#include "constructions/equilibria.hpp"

#include <gtest/gtest.h>

#include "game/equilibrium.hpp"
#include "graph/connectivity.hpp"
#include "graph/distances.hpp"
#include "graph/generators.hpp"
#include "util/logging.hpp"

namespace bbng {
namespace {

void expect_equilibrium_both_versions(const BudgetGame& game, const Digraph& g,
                                      const std::string& label) {
  EXPECT_TRUE(game.is_realization(g)) << label;
  for (const CostVersion version : {CostVersion::Sum, CostVersion::Max}) {
    const auto report = verify_equilibrium(g, version);
    EXPECT_TRUE(report.stable) << label << " " << to_string(version) << ": player "
                               << report.deviator << " improves " << report.old_cost << " → "
                               << report.new_cost;
  }
}

TEST(Construction, Case1SmallInstances) {
  // σ ≥ n−1 and b_max ≥ z.
  const std::vector<std::vector<std::uint32_t>> cases{
      {0, 1, 1, 2},        // n=4, z=1, b_max=2
      {1, 1, 1, 1, 1},     // no zeros
      {0, 0, 2, 2, 3},     // z=2, b_max=3
      {0, 3, 1, 1, 1, 1},  // z=1
      {2, 2, 2},           // dense
  };
  for (const auto& budgets : cases) {
    const BudgetGame game(budgets);
    ASSERT_EQ(classify_construction(game), EquilibriumCase::HubCase1);
    const Digraph g = construct_equilibrium(game);
    expect_equilibrium_both_versions(game, g, "case1");
    EXPECT_LE(diameter(g.underlying()), 2U);
  }
}

TEST(Construction, Case2SmallInstances) {
  // σ ≥ n−1 and b_max < z: many zero-budget players, small budgets.
  const std::vector<std::vector<std::uint32_t>> cases{
      {0, 0, 0, 0, 2, 2, 2},           // n=7, z=4, b_max=2
      {0, 0, 0, 0, 0, 2, 3, 3},        // n=8, z=5, b_max=3
      {0, 0, 0, 0, 0, 0, 2, 2, 3, 3},  // n=10, z=6
  };
  for (const auto& budgets : cases) {
    const BudgetGame game(budgets);
    ASSERT_EQ(classify_construction(game), EquilibriumCase::FourPhaseCase2);
    const Digraph g = construct_equilibrium(game);
    expect_equilibrium_both_versions(game, g, "case2");
    EXPECT_LE(diameter(g.underlying()), 4U);
    EXPECT_EQ(g.brace_count(), 0U);  // "we create no brace"
  }
}

TEST(Construction, Case3DisconnectedInstances) {
  const std::vector<std::vector<std::uint32_t>> cases{
      {0, 0, 0, 0},        // all isolated
      {0, 0, 0, 1, 1},     // σ = 2 < 4
      {0, 0, 0, 0, 0, 3},  // suffix {v6} alone cannot reach σ' = n'-1… m picks more
  };
  for (const auto& budgets : cases) {
    const BudgetGame game(budgets);
    ASSERT_EQ(classify_construction(game), EquilibriumCase::DisconnectedCase3);
    const Digraph g = construct_equilibrium(game);
    expect_equilibrium_both_versions(game, g, "case3");
    EXPECT_FALSE(is_connected(g.underlying()));
  }
}

TEST(Construction, Figure1InstanceIsEquilibriumWithSmallDiameter) {
  const BudgetGame game(figure1_budgets());
  EXPECT_EQ(game.num_players(), 22U);
  EXPECT_EQ(game.zero_budget_players(), 16U);
  ASSERT_EQ(classify_construction(game), EquilibriumCase::FourPhaseCase2);
  const Digraph g = construct_equilibrium(game);
  expect_equilibrium_both_versions(game, g, "figure1");
  EXPECT_LE(diameter(g.underlying()), 4U);
  EXPECT_EQ(g.brace_count(), 0U);
}

TEST(Construction, RandomBudgetsSweepSum) {
  // Property sweep: random budget vectors of every case; always a Nash
  // equilibrium in both versions (verified exactly).
  Rng rng(601);
  for (int round = 0; round < 12; ++round) {
    const std::uint32_t n = 5 + static_cast<std::uint32_t>(rng.next_below(5));
    const std::uint64_t sigma = rng.next_below(2 * n);
    const auto budgets = random_budgets(n, sigma, rng);
    const BudgetGame game(budgets);
    const Digraph g = construct_equilibrium(game);
    expect_equilibrium_both_versions(game, g, cat("random round ", round, " n=", n));
  }
}

TEST(Construction, BudgetOrderIrrelevant) {
  // The constructor sorts internally; a shuffled budget vector still yields
  // a valid equilibrium realization with the right per-player outdegrees.
  Rng rng(602);
  std::vector<std::uint32_t> budgets{0, 0, 0, 0, 2, 2, 2};
  for (int round = 0; round < 5; ++round) {
    rng.shuffle(budgets);
    const BudgetGame game(budgets);
    const Digraph g = construct_equilibrium(game);
    expect_equilibrium_both_versions(game, g, "shuffled");
  }
}

TEST(Construction, PriceOfStabilityWitness) {
  // Connected instances: equilibrium diameter ≤ 4 certifies PoS = O(1).
  Rng rng(603);
  for (int round = 0; round < 8; ++round) {
    const std::uint32_t n = 6 + static_cast<std::uint32_t>(rng.next_below(6));
    const auto budgets = random_budgets(n, n - 1 + rng.next_below(n), rng);
    const BudgetGame game(budgets);
    if (!game.can_connect()) continue;
    const Digraph g = construct_equilibrium(game);
    EXPECT_LE(diameter(g.underlying()), 4U);
  }
}

TEST(Construction, SingletonAndPairGames) {
  expect_equilibrium_both_versions(BudgetGame({0}), construct_equilibrium(BudgetGame({0})),
                                   "n=1");
  expect_equilibrium_both_versions(BudgetGame({1, 0}),
                                   construct_equilibrium(BudgetGame({1, 0})), "n=2 path");
  expect_equilibrium_both_versions(BudgetGame({1, 1}),
                                   construct_equilibrium(BudgetGame({1, 1})), "n=2 brace");
  expect_equilibrium_both_versions(BudgetGame({0, 0}),
                                   construct_equilibrium(BudgetGame({0, 0})), "n=2 empty");
}

TEST(Construction, Claim24HoldsInCase2) {
  // Claim 2.4: every arc from C to A points at a vertex whose only
  // neighbour is that arc's tail. Reconstruct the sorted roles and check.
  const BudgetGame game(figure1_budgets());
  const Digraph g = construct_equilibrium(game);
  const UGraph u = g.underlying();
  // A = zero-budget players; vn = a max-budget player; C = non-zero players
  // that own an arc to vn and have no arc from B... simpler: for every arc
  // x→a into a zero-budget vertex a with degree 1, the tail must be a's only
  // neighbour — which is immediate — and a's degree must then be exactly 1.
  for (Vertex a = 0; a < g.num_vertices(); ++a) {
    if (g.out_degree(a) != 0) continue;  // not in A
    EXPECT_GE(u.degree(a), 1U);          // connected construction
  }
}

}  // namespace
}  // namespace bbng
