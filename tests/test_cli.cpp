// Unit tests for the declarative CLI flag parser shared by bench/examples.
#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace bbng {
namespace {

TEST(Cli, DefaultsSurviveEmptyParse) {
  Cli cli("prog", "test");
  auto n = cli.add_int("n", 42, "count");
  auto p = cli.add_double("p", 0.5, "prob");
  auto s = cli.add_string("mode", "sum", "cost version");
  auto f = cli.add_flag("csv", "csv output");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(*n, 42);
  EXPECT_DOUBLE_EQ(*p, 0.5);
  EXPECT_EQ(*s, "sum");
  EXPECT_FALSE(*f);
}

TEST(Cli, ParsesSpaceSeparatedValues) {
  Cli cli("prog", "test");
  auto n = cli.add_int("n", 0, "count");
  auto p = cli.add_double("p", 0, "prob");
  const char* argv[] = {"prog", "--n", "17", "--p", "0.25"};
  cli.parse(5, argv);
  EXPECT_EQ(*n, 17);
  EXPECT_DOUBLE_EQ(*p, 0.25);
}

TEST(Cli, ParsesEqualsSyntax) {
  Cli cli("prog", "test");
  auto n = cli.add_int("n", 0, "count");
  auto s = cli.add_string("mode", "", "mode");
  const char* argv[] = {"prog", "--n=9", "--mode=max"};
  cli.parse(3, argv);
  EXPECT_EQ(*n, 9);
  EXPECT_EQ(*s, "max");
}

TEST(Cli, FlagSetsTrue) {
  Cli cli("prog", "test");
  auto f = cli.add_flag("csv", "csv");
  const char* argv[] = {"prog", "--csv"};
  cli.parse(2, argv);
  EXPECT_TRUE(*f);
}

TEST(Cli, NegativeIntegers) {
  Cli cli("prog", "test");
  auto n = cli.add_int("delta", 0, "delta");
  const char* argv[] = {"prog", "--delta", "-5"};
  cli.parse(3, argv);
  EXPECT_EQ(*n, -5);
}

TEST(Cli, UnknownOptionThrows) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  Cli cli("prog", "test");
  (void)cli.add_int("n", 0, "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, MalformedNumberThrows) {
  Cli cli("prog", "test");
  (void)cli.add_int("n", 0, "count");
  const char* argv[] = {"prog", "--n", "twelve"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, FlagWithValueThrows) {
  Cli cli("prog", "test");
  (void)cli.add_flag("csv", "csv");
  const char* argv[] = {"prog", "--csv=1"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, PositionalArgumentThrows) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, DuplicateOptionRegistrationThrows) {
  Cli cli("prog", "test");
  (void)cli.add_int("n", 0, "count");
  EXPECT_THROW((void)cli.add_flag("n", "dup"), std::invalid_argument);
}

TEST(Cli, UsageMentionsAllOptions) {
  Cli cli("prog", "does things");
  (void)cli.add_int("n", 3, "count");
  (void)cli.add_flag("csv", "csv output");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("--csv"), std::string::npos);
  EXPECT_NE(usage.find("does things"), std::string::npos);
}

}  // namespace
}  // namespace bbng
