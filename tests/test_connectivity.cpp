// Unit tests for connected components and exact vertex connectivity.
#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace bbng {
namespace {

TEST(Components, CountsAndLabels) {
  UGraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 3U);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(comps.id[0], comps.id[2]);
  EXPECT_EQ(comps.id[3], comps.id[4]);
  EXPECT_NE(comps.id[0], comps.id[3]);
  EXPECT_NE(comps.id[0], comps.id[5]);
}

TEST(Components, EmptyAndSingleton) {
  EXPECT_EQ(connected_components(UGraph(0)).count, 0U);
  EXPECT_EQ(connected_components(UGraph(1)).count, 1U);
  EXPECT_TRUE(is_connected(UGraph(0)));
  EXPECT_TRUE(is_connected(UGraph(1)));
}

TEST(Components, ConnectedGraph) {
  EXPECT_TRUE(is_connected(cycle_ugraph(5)));
  EXPECT_TRUE(is_connected(complete_ugraph(4)));
  UGraph g(2);
  EXPECT_FALSE(is_connected(g));
}

TEST(LocalConnectivity, PathEndpoints) {
  const UGraph g = path_ugraph(5);
  EXPECT_EQ(local_vertex_connectivity(g, 0, 4), 1U);
}

TEST(LocalConnectivity, CycleHasTwoDisjointPaths) {
  const UGraph g = cycle_ugraph(6);
  EXPECT_EQ(local_vertex_connectivity(g, 0, 3), 2U);
}

TEST(LocalConnectivity, AdjacentPairRejected) {
  const UGraph g = path_ugraph(3);
  EXPECT_THROW((void)local_vertex_connectivity(g, 0, 1), std::invalid_argument);
}

TEST(VertexConnectivity, PathIsOne) {
  EXPECT_EQ(vertex_connectivity(path_ugraph(6)), 1U);
}

TEST(VertexConnectivity, CycleIsTwo) {
  EXPECT_EQ(vertex_connectivity(cycle_ugraph(7)), 2U);
}

TEST(VertexConnectivity, CompleteIsNMinusOne) {
  EXPECT_EQ(vertex_connectivity(complete_ugraph(5)), 4U);
}

TEST(VertexConnectivity, DisconnectedIsZero) {
  UGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(vertex_connectivity(g), 0U);
}

TEST(VertexConnectivity, TrivialGraphs) {
  EXPECT_EQ(vertex_connectivity(UGraph(0)), 0U);
  EXPECT_EQ(vertex_connectivity(UGraph(1)), 0U);
}

TEST(VertexConnectivity, CutVertexDetected) {
  // Two triangles sharing vertex 2: κ = 1.
  UGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(2, 4);
  EXPECT_EQ(vertex_connectivity(g), 1U);
}

TEST(VertexConnectivity, GridIsTwo) {
  EXPECT_EQ(vertex_connectivity(grid_graph(3, 4)), 2U);
}

TEST(VertexConnectivity, CompleteBipartite) {
  // K_{3,4}: κ = 3.
  UGraph g(7);
  for (Vertex a = 0; a < 3; ++a) {
    for (Vertex b = 3; b < 7; ++b) g.add_edge(a, b);
  }
  EXPECT_EQ(vertex_connectivity(g), 3U);
}

TEST(VertexConnectivity, HypercubeQ3) {
  // Q3: κ = 3.
  UGraph g(8);
  for (Vertex u = 0; u < 8; ++u) {
    for (int bit = 0; bit < 3; ++bit) {
      const Vertex v = u ^ (1U << bit);
      if (v > u) g.add_edge(u, v);
    }
  }
  EXPECT_EQ(vertex_connectivity(g), 3U);
}

TEST(IsKConnected, ThresholdBehaviour) {
  const UGraph g = cycle_ugraph(8);
  EXPECT_TRUE(is_k_connected(g, 0));
  EXPECT_TRUE(is_k_connected(g, 1));
  EXPECT_TRUE(is_k_connected(g, 2));
  EXPECT_FALSE(is_k_connected(g, 3));
}

TEST(IsKConnected, SmallGraphCannotBeHighlyConnected) {
  EXPECT_FALSE(is_k_connected(complete_ugraph(3), 3));  // needs > k vertices
  EXPECT_TRUE(is_k_connected(complete_ugraph(4), 3));
}

TEST(VertexConnectivity, MatchesBruteForceOnRandomGraphs) {
  // Brute force: κ = min size of a vertex subset whose removal disconnects
  // (or n-1 for complete graphs).
  Rng rng(123);
  for (int round = 0; round < 8; ++round) {
    const UGraph g = connected_erdos_renyi(9, 0.3, rng);
    const std::uint32_t n = g.num_vertices();
    std::uint32_t brute = n - 1;
    for (std::uint32_t mask = 0; mask < (1U << n); ++mask) {
      const auto removed = static_cast<std::uint32_t>(__builtin_popcount(mask));
      if (removed >= brute || n - removed < 2) continue;
      // Build the induced subgraph on the kept vertices.
      std::vector<Vertex> keep;
      for (Vertex v = 0; v < n; ++v) {
        if (!(mask & (1U << v))) keep.push_back(v);
      }
      UGraph sub(static_cast<std::uint32_t>(keep.size()));
      for (std::uint32_t a = 0; a < keep.size(); ++a) {
        for (std::uint32_t b = a + 1; b < keep.size(); ++b) {
          if (g.has_edge(keep[a], keep[b])) sub.add_edge(a, b);
        }
      }
      if (!is_connected(sub)) brute = removed;
    }
    EXPECT_EQ(vertex_connectivity(g), brute) << "round " << round;
  }
}

}  // namespace
}  // namespace bbng
