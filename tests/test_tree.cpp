// Unit tests for rooted/free tree utilities (diameter, spine, A_i pieces).
#include "graph/tree.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/distances.hpp"
#include "graph/generators.hpp"

namespace bbng {
namespace {

TEST(IsTree, PositiveCases) {
  EXPECT_TRUE(is_tree(path_ugraph(1)));
  EXPECT_TRUE(is_tree(path_ugraph(8)));
  UGraph star(5);
  for (Vertex v = 1; v < 5; ++v) star.add_edge(0, v);
  EXPECT_TRUE(is_tree(star));
  EXPECT_TRUE(is_tree(UGraph(0)));
}

TEST(IsTree, NegativeCases) {
  EXPECT_FALSE(is_tree(cycle_ugraph(4)));
  UGraph forest(4);
  forest.add_edge(0, 1);
  forest.add_edge(2, 3);
  EXPECT_FALSE(is_tree(forest));
}

TEST(TreeDiameter, PathAndStar) {
  EXPECT_EQ(tree_diameter(path_ugraph(10)), 9U);
  UGraph star(6);
  for (Vertex v = 1; v < 6; ++v) star.add_edge(0, v);
  EXPECT_EQ(tree_diameter(star), 2U);
  EXPECT_EQ(tree_diameter(path_ugraph(1)), 0U);
}

TEST(TreeDiameter, MatchesEccentricitySweepOnRandomTrees) {
  Rng rng(31);
  for (int round = 0; round < 15; ++round) {
    const UGraph g = random_tree_digraph(50, rng).underlying();
    EXPECT_EQ(tree_diameter(g), diameter(g));
  }
}

TEST(TreeLongestPath, EndpointsRealizeDiameter) {
  Rng rng(32);
  for (int round = 0; round < 10; ++round) {
    const UGraph g = random_tree_digraph(30, rng).underlying();
    const auto path = tree_longest_path(g);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.size(), tree_diameter(g) + 1);
    // Consecutive path vertices must be adjacent.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
    }
  }
}

TEST(RootTree, ParentsDepthsChildren) {
  const UGraph g = path_ugraph(5);
  const RootedTree t = root_tree(g, 2);
  EXPECT_EQ(t.root, 2U);
  EXPECT_EQ(t.parent[2], 2U);
  EXPECT_EQ(t.parent[1], 2U);
  EXPECT_EQ(t.parent[0], 1U);
  EXPECT_EQ(t.depth[0], 2U);
  EXPECT_EQ(t.depth[4], 2U);
  EXPECT_EQ(t.height(), 2U);
  EXPECT_EQ(t.children[2].size(), 2U);
  EXPECT_EQ(t.bfs_order.size(), 5U);
  EXPECT_EQ(t.bfs_order[0], 2U);
}

TEST(SubtreeSizes, SumsAndLeaves) {
  UGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(1, 4);
  const RootedTree t = root_tree(g, 0);
  const auto size = subtree_sizes(t);
  EXPECT_EQ(size[0], 5U);
  EXPECT_EQ(size[1], 3U);
  EXPECT_EQ(size[2], 1U);
  EXPECT_EQ(size[3], 1U);
}

TEST(SubtreeSizes, RandomTreesRootCoversAll) {
  Rng rng(33);
  for (int round = 0; round < 10; ++round) {
    const UGraph g = random_tree_digraph(25, rng).underlying();
    const RootedTree t = root_tree(g, 0);
    EXPECT_EQ(subtree_sizes(t)[0], 25U);
  }
}

TEST(PathAttachmentSizes, SpiderDecomposition) {
  // Path 0-1-2 with extra leaves 3,4 on vertex 1.
  UGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(1, 4);
  const Vertex path[] = {0, 1, 2};
  const auto a = path_attachment_sizes(g, path);
  ASSERT_EQ(a.size(), 3U);
  EXPECT_EQ(a[0], 1U);
  EXPECT_EQ(a[1], 3U);  // vertex 1 plus leaves 3, 4
  EXPECT_EQ(a[2], 1U);
  EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0ULL), 5U);
}

TEST(PathAttachmentSizes, LongestPathCoversTree) {
  Rng rng(34);
  for (int round = 0; round < 10; ++round) {
    const UGraph g = random_tree_digraph(40, rng).underlying();
    const auto path = tree_longest_path(g);
    const auto a = path_attachment_sizes(g, path);
    EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0ULL), 40U);
    for (const auto ai : a) EXPECT_GE(ai, 1U);  // each spine vertex counts itself
  }
}

}  // namespace
}  // namespace bbng
